// Unit tests for the daemon's persistent structures: protocol encoding,
// allocator, ModelTable, MIndex, checkpoint transactions.
#include <gtest/gtest.h>

#include <thread>

#include "core/daemon/allocator.h"
#include "core/daemon/mindex.h"
#include "core/daemon/model_table.h"
#include "core/daemon/slots.h"
#include "core/protocol.h"

namespace portus::core {
namespace {

// --- protocol ----------------------------------------------------------------

RegisterModelMsg sample_registration() {
  RegisterModelMsg m;
  m.model_name = "bert";
  m.qp_tokens = {0xCAFE1234, 0xCAFE1235};
  m.phantom = false;
  for (int i = 0; i < 3; ++i) {
    m.tensors.push_back(TensorDesc{
        .name = "bert.layer" + std::to_string(i),
        .dtype = dnn::DType::kF32,
        .shape = {512, 1024},
        .size = 512 * 1024 * 4,
        .gpu_addr = 0xFFFF0000ull + static_cast<std::uint64_t>(i) * 0x1000,
        .rkey = 0x1000u + static_cast<std::uint32_t>(i),
    });
  }
  return m;
}

TEST(ProtocolTest, RegisterModelRoundTrip) {
  const auto msg = sample_registration();
  const auto wire = encode(msg);
  EXPECT_EQ(decode_type(wire), MsgType::kRegisterModel);
  const auto back = decode_register_model(wire);
  EXPECT_EQ(back.model_name, "bert");
  EXPECT_EQ(back.qp_tokens, (std::vector<std::uint64_t>{0xCAFE1234, 0xCAFE1235}));
  ASSERT_EQ(back.tensors.size(), 3u);
  EXPECT_EQ(back.tensors[1].name, "bert.layer1");
  EXPECT_EQ(back.tensors[1].shape, (std::vector<std::int64_t>{512, 1024}));
  EXPECT_EQ(back.tensors[1].size, 512u * 1024 * 4);
  EXPECT_EQ(back.tensors[2].rkey, 0x1002u);
  EXPECT_EQ(back.total_bytes(), 3u * 512 * 1024 * 4);
}

TEST(ProtocolTest, AllControlMessagesRoundTrip) {
  {
    const auto w = encode(CheckpointReqMsg{.model_name = "m", .iteration = 7});
    const auto b = decode_checkpoint_req(w);
    EXPECT_EQ(b.model_name, "m");
    EXPECT_EQ(b.iteration, 7u);
  }
  {
    const auto w = encode(CheckpointDoneMsg{.model_name = "m", .epoch = 3, .ok = true});
    const auto b = decode_checkpoint_done(w);
    EXPECT_TRUE(b.ok);
    EXPECT_EQ(b.epoch, 3u);
  }
  {
    const auto w = encode(RestoreDoneMsg{.model_name = "m", .ok = false, .error = "nope"});
    const auto b = decode_restore_done(w);
    EXPECT_FALSE(b.ok);
    EXPECT_EQ(b.error, "nope");
  }
  {
    const auto w = encode(FinishJobMsg{.model_name = "gpt"});
    EXPECT_EQ(decode_finish_job(w).model_name, "gpt");
  }
}

TEST(ProtocolTest, WrongTypeDecodingThrows) {
  const auto wire = encode(CheckpointReqMsg{.model_name = "m"});
  EXPECT_THROW(decode_register_model(wire), Corruption);
}

TEST(ProtocolTest, QpRendezvous) {
  QpRendezvous rv;
  // No real QP needed for registry mechanics: use a fake pointer identity.
  auto* fake = reinterpret_cast<rdma::QueuePair*>(0x1234);
  const auto token = rv.publish(*fake);
  EXPECT_EQ(&rv.resolve(token), fake);
  EXPECT_THROW(rv.resolve(token + 999), NotFound);
}

// --- allocator ---------------------------------------------------------------

struct AllocFixture {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  PmemAllocator::Config config{.table_offset = 4_KiB,
                               .table_capacity = 512,
                               .data_offset = 1_MiB,
                               .data_end = 64_MiB};
  PmemAllocator alloc{device, config};
};

TEST(AllocatorTest, BumpAllocationIsDisjoint) {
  AllocFixture f;
  const auto a = f.alloc.alloc(1000);
  const auto b = f.alloc.alloc(1000);
  EXPECT_GE(a, 1_MiB);
  EXPECT_GE(b, a + 1000);
  EXPECT_EQ(f.alloc.live_bytes(), 2 * 1024u);  // 256-aligned
}

TEST(AllocatorTest, FreeAndReuse) {
  AllocFixture f;
  const auto a = f.alloc.alloc(10_KiB);
  f.alloc.free(a);
  EXPECT_EQ(f.alloc.live_bytes(), 0u);
  EXPECT_EQ(f.alloc.free_listed_bytes(), 10_KiB);
  const auto b = f.alloc.alloc(8_KiB);  // first-fit reuse of the freed extent
  EXPECT_EQ(b, a);
  EXPECT_EQ(f.alloc.free_listed_bytes(), 0u);
}

TEST(AllocatorTest, DoubleFreeAndUnknownFreeThrow) {
  AllocFixture f;
  const auto a = f.alloc.alloc(1_KiB);
  f.alloc.free(a);
  EXPECT_THROW(f.alloc.free(a), InvalidArgument);
  EXPECT_THROW(f.alloc.free(0xDEAD), InvalidArgument);
}

TEST(AllocatorTest, ExhaustionThrows) {
  AllocFixture f;
  EXPECT_THROW(f.alloc.alloc(128_MiB), ResourceExhausted);
  // After the failed attempt the heap is still usable.
  EXPECT_NO_THROW(f.alloc.alloc(1_MiB));
}

TEST(AllocatorTest, RecoveryRebuildsState) {
  AllocFixture f;
  const auto a = f.alloc.alloc(10_KiB);
  const auto b = f.alloc.alloc(20_KiB);
  f.alloc.free(a);
  f.device.persist_all();

  PmemAllocator recovered{f.device, f.config};
  recovered.recover();
  EXPECT_EQ(recovered.live_bytes(), (20_KiB / 256 + (20_KiB % 256 ? 1 : 0)) * 256);
  EXPECT_EQ(recovered.free_listed_bytes(), 10_KiB);
  EXPECT_GE(recovered.bump(), b + 20_KiB);
  // The freed extent is reusable after recovery.
  EXPECT_EQ(recovered.alloc(10_KiB), a);
}

TEST(AllocatorTest, CompactReclaimsTrailingFreeExtents) {
  AllocFixture f;
  const auto a = f.alloc.alloc(1_MiB);
  const auto b = f.alloc.alloc(2_MiB);
  (void)a;
  const auto bump_before = f.alloc.bump();
  f.alloc.free(b);
  EXPECT_EQ(f.alloc.compact(), 2_MiB);
  EXPECT_EQ(f.alloc.bump(), bump_before - 2_MiB);
  EXPECT_EQ(f.alloc.free_listed_bytes(), 0u);
}

TEST(AllocatorTest, ConcurrentAllocationNeverDoubleAllocates) {
  // Real-thread stress on the lock-free CAS path (outside the DES).
  AllocFixture f;
  constexpr int kThreads = 8;
  constexpr int kAllocsPerThread = 50;
  std::vector<std::vector<Bytes>> results(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&f, &results, t] {
        for (int i = 0; i < kAllocsPerThread; ++i) {
          results[static_cast<std::size_t>(t)].push_back(f.alloc.alloc(4096));
        }
      });
    }
  }
  std::vector<Bytes> all;
  for (const auto& r : results) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "two threads received the same extent";
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kAllocsPerThread));
}

// --- ModelTable --------------------------------------------------------------

TEST(ModelTableTest, InsertLookupRemove) {
  pmem::PmemDevice device{"pmem", 16_MiB, 0x1000};
  ModelTable table{device, 4_KiB, 16};
  table.insert("resnet50", 0x100000);
  table.insert("bert", 0x200000);
  EXPECT_EQ(table.lookup("resnet50"), 0x100000u);
  EXPECT_EQ(table.lookup("bert"), 0x200000u);
  EXPECT_EQ(table.lookup("nope"), std::nullopt);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.names(), (std::vector<std::string>{"bert", "resnet50"}))
      << "ModelMap iterates in sorted (RB-tree) order";
  table.remove("bert");
  EXPECT_EQ(table.lookup("bert"), std::nullopt);
  EXPECT_THROW(table.remove("bert"), NotFound);
}

TEST(ModelTableTest, OverwriteUpdatesOffset) {
  pmem::PmemDevice device{"pmem", 16_MiB, 0x1000};
  ModelTable table{device, 4_KiB, 16};
  table.insert("m", 0x100);
  table.insert("m", 0x200);
  EXPECT_EQ(table.lookup("m"), 0x200u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ModelTableTest, CapacityExhaustion) {
  pmem::PmemDevice device{"pmem", 16_MiB, 0x1000};
  ModelTable table{device, 4_KiB, 2};
  table.insert("a", 1);
  table.insert("b", 2);
  EXPECT_THROW(table.insert("c", 3), ResourceExhausted);
}

TEST(ModelTableTest, RecoverySurvivesCrash) {
  pmem::PmemDevice device{"pmem", 16_MiB, 0x1000};
  {
    ModelTable table{device, 4_KiB, 16};
    table.insert("resnet50", 0x100000);
    table.insert("gpt", 0x300000);
    table.remove("gpt");
    table.insert("bert", 0x200000);
  }
  device.simulate_crash();  // all table writes were persisted by insert()

  ModelTable recovered{device, 4_KiB, 16};
  recovered.recover();
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.lookup("resnet50"), 0x100000u);
  EXPECT_EQ(recovered.lookup("bert"), 0x200000u);
  EXPECT_EQ(recovered.lookup("gpt"), std::nullopt);
}

TEST(ModelTableTest, NameLengthValidation) {
  pmem::PmemDevice device{"pmem", 16_MiB, 0x1000};
  ModelTable table{device, 4_KiB, 16};
  EXPECT_THROW(table.insert("", 1), InvalidArgument);
  EXPECT_THROW(table.insert(std::string(48, 'x'), 1), InvalidArgument);
  EXPECT_NO_THROW(table.insert(std::string(47, 'x'), 1));
}

// --- MIndex + CheckpointTxn ----------------------------------------------------

struct IndexFixture {
  pmem::PmemDevice device{"pmem", 256_MiB, 0x1000};
  PmemAllocator alloc{device, PmemAllocator::Config{.table_offset = 4_KiB,
                                                    .table_capacity = 512,
                                                    .data_offset = 1_MiB,
                                                    .data_end = 256_MiB}};
  RegisterModelMsg reg = [] {
    RegisterModelMsg m;
    m.model_name = "bert";
    for (int i = 0; i < 4; ++i) {
      m.tensors.push_back(TensorDesc{
          .name = "t" + std::to_string(i),
          .dtype = dnn::DType::kF32,
          .shape = {100, 100},
          .size = 40'000,
      });
    }
    return m;
  }();
};

TEST(MIndexTest, CreateLaysOutTensorsContiguously) {
  IndexFixture f;
  const auto idx = MIndex::create(f.device, f.alloc, f.reg);
  EXPECT_EQ(idx.model_name(), "bert");
  ASSERT_EQ(idx.tensors().size(), 4u);
  Bytes expected_offset = 0;
  for (const auto& t : idx.tensors()) {
    EXPECT_EQ(t.offset_in_slot, expected_offset);
    expected_offset += (t.size + 255) & ~Bytes{255};
  }
  EXPECT_EQ(idx.slot_size(), expected_offset);
  EXPECT_NE(idx.slot(0).data_offset, idx.slot(1).data_offset);
  EXPECT_EQ(idx.slot(0).state, SlotState::kEmpty);
}

TEST(MIndexTest, LoadRoundTripsMetadata) {
  IndexFixture f;
  const auto created = MIndex::create(f.device, f.alloc, f.reg);
  const auto loaded = MIndex::load(f.device, created.record_offset());
  EXPECT_EQ(loaded.model_name(), "bert");
  EXPECT_EQ(loaded.slot_size(), created.slot_size());
  ASSERT_EQ(loaded.tensors().size(), 4u);
  EXPECT_EQ(loaded.tensors()[2].name, "t2");
  EXPECT_EQ(loaded.tensors()[2].shape, (std::vector<std::int64_t>{100, 100}));
  EXPECT_EQ(loaded.slot(0).data_offset, created.slot(0).data_offset);
}

TEST(MIndexTest, LoadRejectsGarbage) {
  IndexFixture f;
  EXPECT_THROW(MIndex::load(f.device, 2_MiB), Corruption);
}

TEST(CheckpointTxnTest, FirstCheckpointUsesSlot0) {
  IndexFixture f;
  auto idx = MIndex::create(f.device, f.alloc, f.reg);
  auto txn = CheckpointTxn::begin(idx);
  EXPECT_EQ(txn.slot(), 0);
  EXPECT_EQ(idx.slot(0).state, SlotState::kActive);
  EXPECT_EQ(txn.epoch(), 1u);
  txn.commit();
  EXPECT_EQ(idx.slot(0).state, SlotState::kDone);
  EXPECT_EQ(idx.latest_done_slot(), 0);
}

TEST(CheckpointTxnTest, AlternatesSlotsAndKeepsOneValidVersion) {
  IndexFixture f;
  auto idx = MIndex::create(f.device, f.alloc, f.reg);
  for (int i = 0; i < 6; ++i) {
    auto txn = CheckpointTxn::begin(idx);
    EXPECT_EQ(txn.slot(), i % 2);
    if (i > 0) {
      // While writing slot A, slot B must hold the previous DONE version.
      EXPECT_EQ(idx.slot(1 - txn.slot()).state, SlotState::kDone);
    }
    txn.commit();
    EXPECT_EQ(idx.latest_done_slot(), i % 2);
    EXPECT_EQ(idx.max_epoch(), static_cast<std::uint64_t>(i + 1));
  }
}

TEST(CheckpointTxnTest, AbortLeavesSlotActiveAndInvalid) {
  IndexFixture f;
  auto idx = MIndex::create(f.device, f.alloc, f.reg);
  {
    auto txn = CheckpointTxn::begin(idx);
    // destructor = crash semantics: no rollback write
  }
  EXPECT_EQ(idx.slot(0).state, SlotState::kActive);
  EXPECT_EQ(idx.latest_done_slot(), std::nullopt) << "ACTIVE must never be restorable";
  // The next checkpoint reuses the same (invalid) slot.
  auto txn2 = CheckpointTxn::begin(idx);
  EXPECT_EQ(txn2.slot(), 0);
  txn2.commit();
  EXPECT_EQ(idx.latest_done_slot(), 0);
}

TEST(CheckpointTxnTest, CrashDuringWriteLeavesPreviousVersionValid) {
  IndexFixture f;
  auto idx = MIndex::create(f.device, f.alloc, f.reg);

  // First complete checkpoint into slot 0.
  {
    auto txn = CheckpointTxn::begin(idx);
    f.device.fill(txn.data_offset(), idx.slot_size(), std::byte{0xAA});
    f.device.persist(txn.data_offset(), idx.slot_size());
    txn.commit();
  }
  // Second checkpoint crashes mid-transfer: ACTIVE persisted, data partial.
  {
    auto txn = CheckpointTxn::begin(idx);
    f.device.fill(txn.data_offset(), idx.slot_size() / 2, std::byte{0xBB});
    // no commit — power failure
  }
  f.device.simulate_crash();

  const auto recovered = MIndex::load(f.device, idx.record_offset());
  ASSERT_EQ(recovered.latest_done_slot(), 0);
  EXPECT_EQ(recovered.slot(1).state, SlotState::kActive);
  // Slot 0's data survived untouched.
  const auto data = f.device.read(recovered.slot(0).data_offset, recovered.slot_size());
  for (auto b : data) EXPECT_EQ(b, std::byte{0xAA});
}

TEST(MIndexTest, DestroyReleasesAllExtents) {
  IndexFixture f;
  auto idx = MIndex::create(f.device, f.alloc, f.reg);
  EXPECT_GT(f.alloc.live_bytes(), 0u);
  idx.destroy(f.alloc);
  EXPECT_EQ(f.alloc.live_bytes(), 0u);
}

}  // namespace
}  // namespace portus::core
