// Portus-Cluster: sharded multi-daemon placement, replication, and degraded
// restore (ISSUE acceptance criteria a/b/c plus manifest and protocol
// version coverage).
#include <gtest/gtest.h>

#include "common/strformat.h"
#include "core/cluster/cluster_client.h"
#include "core/cluster/cluster_ctl.h"
#include "core/cluster/manifest.h"
#include "core/cluster/placement.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"
#include "sim/fault.h"

namespace portus::core::cluster {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Placement policy (pure function; acceptance criterion c's foundation).

TEST(PlacementTest, DeterministicAcrossProcesses) {
  const std::vector<Bytes> sizes{96_MiB, 1_MiB, 40_MiB, 40_MiB, 8_MiB, 3_MiB, 200_KiB};
  const auto a = Placement::compute("gpt-tiny", sizes, 4, 2, 7);
  const auto b = Placement::compute("gpt-tiny", sizes, 4, 2, 7);
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.tensor_shard, b.tensor_shard);
  ASSERT_EQ(a.shard_daemons, b.shard_daemons);

  // A different placement epoch may rotate the ring; the digest must differ
  // deterministically, not randomly.
  const auto c1 = Placement::compute("gpt-tiny", sizes, 4, 2, 8);
  const auto c2 = Placement::compute("gpt-tiny", sizes, 4, 2, 8);
  EXPECT_EQ(c1.digest(), c2.digest());
}

TEST(PlacementTest, EveryTensorPlacedOnceAndReplicasDistinct) {
  const std::vector<Bytes> sizes{10_MiB, 20_MiB, 30_MiB, 5_MiB, 5_MiB};
  const auto plan = Placement::compute("m", sizes, 3, 2, 0);
  ASSERT_EQ(plan.tensor_shard.size(), sizes.size());
  std::size_t placed = 0;
  for (const auto& shard : plan.shard_tensors) placed += shard.size();
  EXPECT_EQ(placed, sizes.size());
  for (const auto& ring : plan.shard_daemons) {
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_NE(ring[0], ring[1]);  // two copies never share a daemon
  }
}

TEST(PlacementTest, LptKeepsShardsBalanced) {
  // 8 equal tensors over 4 shards must land exactly 2 per shard.
  const std::vector<Bytes> sizes(8, 16_MiB);
  const auto plan = Placement::compute("balanced", sizes, 4, 1, 0);
  for (const auto& bytes : plan.shard_bytes) EXPECT_EQ(bytes, 32_MiB);
}

TEST(PlacementTest, ReplicasClampedToRingSize) {
  const std::vector<Bytes> sizes{1_MiB, 2_MiB};
  const auto plan = Placement::compute("m", sizes, 2, 5, 0);
  EXPECT_EQ(plan.replicas, 2u);
  for (const auto& ring : plan.shard_daemons) EXPECT_EQ(ring.size(), 2u);
}

// ---------------------------------------------------------------------------
// Manifest wire format.

TEST(ManifestTest, EncodeDecodeRoundtrip) {
  const std::vector<Bytes> sizes{96_MiB, 1_MiB, 40_MiB};
  const std::vector<std::string> names{"w0", "w1", "w2"};
  const std::vector<std::string> endpoints{"portusd0", "portusd1", "portusd2"};
  const auto plan = Placement::compute("gpt-tiny", sizes, 3, 2, 4);
  const auto m = ShardManifest::from_plan(plan, endpoints, names, sizes);

  const auto wire = m.encode();
  const auto back = ShardManifest::decode(wire);
  EXPECT_EQ(back.model_name, "gpt-tiny");
  EXPECT_EQ(back.placement_epoch, 4u);
  EXPECT_EQ(back.plan_digest, plan.digest());
  EXPECT_EQ(back.daemon_count, 3u);
  EXPECT_EQ(back.replicas, 2u);
  EXPECT_EQ(back.endpoints, endpoints);
  ASSERT_EQ(back.tensors.size(), 3u);
  EXPECT_EQ(back.tensors[0].name, "w0");
  EXPECT_EQ(back.tensors[0].size, 96_MiB);
  EXPECT_EQ(back.tensors[0].shard, plan.tensor_shard[0]);
  EXPECT_EQ(back.shard_daemons, plan.shard_daemons);
}

TEST(ManifestTest, CorruptionRejected) {
  const std::vector<Bytes> sizes{1_MiB};
  const std::vector<std::string> names{"w0"};
  const std::vector<std::string> endpoints{"portusd0"};
  const auto plan = Placement::compute("m", sizes, 1, 1, 0);
  auto wire = ShardManifest::from_plan(plan, endpoints, names, sizes).encode();
  wire[wire.size() / 2] ^= std::byte{0x5a};
  EXPECT_THROW(ShardManifest::decode(wire), Corruption);
  EXPECT_THROW(ShardManifest::decode({}), Corruption);
}

// ---------------------------------------------------------------------------
// The cluster rig: N daemons on their own storage nodes, fault-injectable.

struct ClusterRig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster;
  QpRendezvous rendezvous;
  sim::FaultInjector faults{eng};
  std::vector<std::unique_ptr<PortusDaemon>> daemons;
  std::vector<std::string> endpoints;

  explicit ClusterRig(int n) {
    cluster = net::Cluster::sharded_testbed(eng, n);
    for (int i = 0; i < n; ++i) {
      PortusDaemon::Config cfg;
      cfg.endpoint = strf("portusd{}", i);
      cfg.faults = &faults;
      endpoints.push_back(cfg.endpoint);
      daemons.push_back(std::make_unique<PortusDaemon>(
          *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
      daemons.back()->start();
    }
  }
  ~ClusterRig() { eng.shutdown(); }

  ClusterClient::Config client_config(std::uint32_t replicas) {
    ClusterClient::Config cfg;
    cfg.endpoints = endpoints;
    cfg.replicas = replicas;
    cfg.op_timeout = 50ms;
    return cfg;
  }
};

// Acceptance (a): shard + replicate a multi-tensor model across 3 daemons
// with R=2; every daemon holds its copies; restore is bit-exact.
TEST(ClusterTest, ShardReplicateRestoreBitExact) {
  ClusterRig r{3};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);
  const auto crc0 = model.weights_crc();

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(2)};
  bool ok = false;
  r.eng.spawn([](ClusterClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.register_model(m);
    const auto ck = co_await c.checkpoint(1);
    EXPECT_EQ(ck.epoch, 1u);
    EXPECT_FALSE(ck.degraded);
    m.mutate_weights(13);  // diverge post-checkpoint
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 1u);
    EXPECT_FALSE(rr.degraded);
    EXPECT_EQ(rr.rerouted_shards, 0u);
    done = true;
  }(client, model, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), crc0);
  EXPECT_EQ(r.eng.failed_process_count(), 0);

  // R=2 over 3 daemons: 2 copies per shard, spread across the ring; each
  // shard-scoped registration carries the manifest into the MIndex.
  std::size_t copies = 0;
  for (auto& d : r.daemons) {
    for (const auto& name : d->model_table().names()) {
      const MIndex* idx = d->find_live_index(name);
      ASSERT_NE(idx, nullptr);
      EXPECT_TRUE(idx->sharded());
      const auto manifest = ShardManifest::decode(idx->manifest());
      EXPECT_EQ(manifest.model_name, "resnet50");
      EXPECT_EQ(manifest.replicas, 2u);
      ++copies;
    }
    EXPECT_GT(d->stats().shard_registrations, 0u);
  }
  EXPECT_EQ(copies, client.plan().shard_tensors.size() * 2);
}

// Acceptance (b): kill one daemon mid-run through the sim fault hook; the
// client completes a degraded restore from the surviving replicas.
TEST(ClusterTest, DegradedRestoreAfterDaemonCrash) {
  ClusterRig r{3};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(2)};
  bool ok = false;
  std::uint32_t crc2 = 0;
  r.eng.spawn([](ClusterRig& rig, ClusterClient& c, dnn::Model& m, std::uint32_t& want,
                 bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    m.mutate_weights(2);
    co_await c.checkpoint(2);
    want = m.weights_crc();

    rig.faults.kill_now("portusd1");  // crash-stop one ring member

    m.mutate_weights(777);  // diverge; epoch 2 must come back from replicas
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 2u);
    EXPECT_TRUE(rr.degraded);
    EXPECT_GT(rr.rerouted_shards, 0u);
    done = true;
  }(r, client, model, crc2, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), crc2);
  EXPECT_TRUE(r.daemons[1]->killed());
  EXPECT_GE(client.stats().degraded_restores, 1u);
  EXPECT_GE(client.stats().lane_failures, 1u);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// A crash *between* checkpoints: the next checkpoint itself degrades (the
// dead lane's copies stop advancing) but still commits on every shard, and
// the restore of that epoch re-routes around the hole.
TEST(ClusterTest, DegradedCheckpointThenRestore) {
  ClusterRig r{4};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(2)};
  bool ok = false;
  std::uint32_t want = 0;
  r.eng.spawn([](ClusterRig& rig, ClusterClient& c, dnn::Model& m, std::uint32_t& crc,
                 bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    rig.faults.kill_now("portusd2");
    m.mutate_weights(2);
    const auto ck = co_await c.checkpoint(2);
    EXPECT_EQ(ck.epoch, 2u);
    EXPECT_TRUE(ck.degraded);
    crc = m.weights_crc();
    m.mutate_weights(3);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 2u);
    done = true;
  }(r, client, model, want, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), want);
  EXPECT_GE(client.stats().degraded_checkpoints, 1u);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// Gray failure: the daemon hangs instead of crashing. Only the client-side
// op timeout detects it; the restore then degrades exactly like a crash.
TEST(ClusterTest, HungDaemonDetectedByTimeout) {
  ClusterRig r{3};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(2)};
  bool ok = false;
  std::uint32_t want = 0;
  r.eng.spawn([](ClusterRig& rig, ClusterClient& c, dnn::Model& m, std::uint32_t& crc,
                 bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    crc = m.weights_crc();
    rig.faults.kill_now("portusd0", sim::FaultMode::kHang);
    m.mutate_weights(9);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 1u);
    EXPECT_TRUE(rr.degraded);
    done = true;
  }(r, client, model, want, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), want);
  EXPECT_GE(client.stats().lane_failures, 1u);
  // The hang was detected by the watchdog, not by a socket error.
  std::uint64_t timeouts = 0;
  for (std::size_t i = 0; i < client.lane_count(); ++i) {
    timeouts += client.lane_client(i).stats().timeouts;
  }
  EXPECT_GE(timeouts, 1u);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// Acceptance (c): a brand-new process (fresh ClusterClient, no state) with
// the same ring config recomputes the identical placement and restores the
// checkpoint bit-exactly, with no metadata service in between.
TEST(ClusterTest, PlacementSurvivesProcessRestart) {
  ClusterRig r{3};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  std::uint64_t digest1 = 0;
  std::uint32_t crc = 0;
  {
    ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(2)};
    bool ok = false;
    r.eng.spawn([](ClusterClient& c, dnn::Model& m, bool& done) -> sim::Process {
      co_await c.register_model(m);
      co_await c.checkpoint(1);
      done = true;
    }(client, model, ok));
    r.eng.run();
    ASSERT_TRUE(ok);
    digest1 = client.plan().digest();
    crc = model.weights_crc();
  }

  // "Restart": a new incarnation with fresh (wrong) weights re-registers —
  // same shard keys land on the same daemons — and pulls epoch 1 back.
  opt.weight_seed = 4242;
  auto model2 = dnn::ModelZoo::create(volta.gpu(1), "resnet50", opt);
  ASSERT_NE(model2.weights_crc(), crc);
  ClusterClient client2{*r.cluster, volta, volta.gpu(1), r.rendezvous, r.client_config(2)};
  bool ok = false;
  r.eng.spawn([](ClusterClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.register_model(m);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 1u);
    EXPECT_FALSE(rr.degraded);
    done = true;
  }(client2, model2, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(client2.plan().digest(), digest1);
  EXPECT_EQ(model2.weights_crc(), crc);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// Losing every copy of a shard is unrecoverable and must fail loudly.
TEST(ClusterTest, RestoreThrowsWhenAllCopiesOfShardLost) {
  ClusterRig r{2};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  // R=1: one copy per shard; killing either daemon orphans its shard.
  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(1)};
  bool threw = false;
  r.eng.spawn([](ClusterRig& rig, ClusterClient& c, dnn::Model& m,
                 bool& out) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    rig.faults.kill_now("portusd0");
    try {
      co_await c.restore();
    } catch (const NotFound&) {
      out = true;
    }
  }(r, client, model, threw));
  r.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// cluster-status aggregation sees every daemon and the client counters.
TEST(ClusterTest, ClusterCtlStatusAggregates) {
  ClusterRig r{3};
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous, r.client_config(2)};
  bool ok = false;
  r.eng.spawn([](ClusterRig& rig, ClusterClient& c, dnn::Model& m, bool& done)
                  -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    rig.faults.kill_now("portusd1");
    m.mutate_weights(1);
    co_await c.restore();
    done = true;
  }(r, client, model, ok));
  r.eng.run();
  ASSERT_TRUE(ok);

  std::vector<PortusDaemon*> ptrs;
  for (auto& d : r.daemons) ptrs.push_back(d.get());
  const auto row = ClusterCtl::inspect(*r.daemons[1]);
  EXPECT_FALSE(row.up);
  EXPECT_GT(row.shard_copies, 0u);
  EXPECT_EQ(row.models, 1u);

  const auto table = ClusterCtl::render_status(ptrs, &client);
  EXPECT_NE(table.find("portusd0"), std::string::npos);
  EXPECT_NE(table.find("DOWN"), std::string::npos);
  EXPECT_NE(table.find("degraded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Protocol magic/version negotiation (satellite).

TEST(ClusterTest, DaemonRejectsStaleProtocolExplicitly) {
  ClusterRig r{1};
  auto& volta = r.cluster->node("client-volta");

  bool ok = false;
  r.eng.spawn([](ClusterRig& rig, net::Node& node, bool& done) -> sim::Process {
    (void)node;
    auto socket = co_await rig.cluster->endpoint("portusd0").connect();
    RegisterModelMsg msg;
    msg.version = 1;  // stale client generation
    msg.model_name = "old-timer";
    msg.tensors.push_back(TensorDesc{.name = "w", .dtype = dnn::DType::kF32,
                                     .shape = {4}, .size = 16, .gpu_addr = 0, .rkey = 0});
    auto wire = encode(msg);
    socket->send(std::move(wire));
    auto reply = co_await socket->recv();
    const auto ack = decode_register_ack(reply);
    EXPECT_FALSE(ack.ok);
    EXPECT_NE(ack.error.find("version"), std::string::npos);
    done = true;
  }(r, volta, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(r.daemons[0]->stats().rejected_protocol, 1u);
  EXPECT_EQ(r.daemons[0]->stats().registrations, 0u);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(ClusterTest, ClientRejectsStaleAck) {
  RegisterAckMsg ack;
  ack.ok = true;
  ack.magic = 0xDEADBEEF;
  const auto wire = encode(ack);
  EXPECT_THROW(decode_register_ack(wire), ProtocolMismatch);

  RegisterAckMsg ack2;
  ack2.ok = true;
  ack2.version = kProtocolVersion + 1;
  const auto wire2 = encode(ack2);
  EXPECT_THROW(decode_register_ack(wire2), ProtocolMismatch);
}

TEST(ClusterTest, RegisterModelRoundtripCarriesShardIdentity) {
  RegisterModelMsg msg;
  msg.model_name = "m#s1";
  msg.shard_id = 1;
  msg.shard_count = 3;
  msg.replica = 1;
  msg.replica_count = 2;
  msg.placement_epoch = 9;
  msg.manifest = {std::byte{1}, std::byte{2}, std::byte{3}};
  msg.tensors.push_back(TensorDesc{.name = "w", .dtype = dnn::DType::kF32,
                                   .shape = {4}, .size = 16, .gpu_addr = 1, .rkey = 2});
  const auto wire = encode(msg);
  const auto back = decode_register_model(wire);
  EXPECT_TRUE(back.sharded());
  EXPECT_EQ(back.shard_id, 1u);
  EXPECT_EQ(back.shard_count, 3u);
  EXPECT_EQ(back.replica, 1u);
  EXPECT_EQ(back.replica_count, 2u);
  EXPECT_EQ(back.placement_epoch, 9u);
  EXPECT_EQ(back.manifest, msg.manifest);
}

}  // namespace
}  // namespace portus::core::cluster
