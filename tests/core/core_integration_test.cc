// End-to-end tests: PortusClient <-> PortusDaemon over the simulated
// cluster — registration, zero-copy checkpoint/restore with bit-exact
// verification, multi-tenancy, crash consistency across daemon restarts,
// async training integration, repacking, portusctl.
#include <gtest/gtest.h>

#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/repacker.h"
#include "core/portusctl.h"
#include "dnn/model_zoo.h"
#include "dnn/training.h"
#include "net/cluster.h"
#include "storage/ext4_nvme.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  net::Node& client_node = cluster->node("client-volta");
  net::Node& server_node = cluster->node("server");
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon =
      std::make_unique<PortusDaemon>(*cluster, server_node, rendezvous);

  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }  // destroy coroutines before daemon/cluster

  dnn::Model model(const std::string& name, double scale, int gpu = 0) {
    dnn::ModelZoo::Options opt;
    opt.scale = scale;
    return dnn::ModelZoo::create(client_node.gpu(static_cast<std::size_t>(gpu)), name, opt);
  }

  std::unique_ptr<PortusClient> client(int gpu = 0) {
    return std::make_unique<PortusClient>(*cluster, client_node,
                                          client_node.gpu(static_cast<std::size_t>(gpu)),
                                          rendezvous);
  }
};

TEST(PortusE2ETest, CheckpointThenRestoreIsBitExact) {
  Rig r;
  auto model = r.model("resnet50", 0.05);
  const auto crc0 = model.weights_crc();
  auto client = r.client();

  bool done = false;
  r.eng.spawn([](Rig& rig, PortusClient& c, dnn::Model& m, std::uint32_t crc,
                 bool& ok) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    const auto epoch = co_await c.checkpoint(m, 1);
    EXPECT_EQ(epoch, 1u);

    m.mutate_weights(99);  // training diverges
    EXPECT_NE(m.weights_crc(), crc);

    const auto restored = co_await c.restore(m);
    EXPECT_EQ(restored, 1u);
    EXPECT_EQ(m.weights_crc(), crc) << "restore must reproduce the exact bytes";
    ok = true;
    (void)rig;
  }(r, *client, model, crc0, done));
  r.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(r.daemon->stats().checkpoints, 1u);
  EXPECT_EQ(r.daemon->stats().restores, 1u);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(PortusE2ETest, CheckpointedBytesArePersistedOnPmem) {
  Rig r;
  auto model = r.model("alexnet", 0.05);
  auto client = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(*client, model));
  r.eng.run();

  // The committed slot's data must be durable (not merely written).
  auto index = r.daemon->load_index("alexnet");
  const auto slot_idx = index.latest_done_slot();
  ASSERT_TRUE(slot_idx.has_value());
  const auto& slot = index.slot(*slot_idx);
  EXPECT_TRUE(r.daemon->device().is_persisted(slot.data_offset, index.slot_size()));

  // Byte-compare tensor 0 between GPU and PMEM.
  const auto& t0 = index.tensors()[0];
  auto& buf = model.tensor(0).buffer();
  EXPECT_EQ(r.daemon->device().crc(slot.data_offset + t0.offset_in_slot, t0.size),
            buf.segment().crc(buf.offset(), t0.size));
}

TEST(PortusE2ETest, RestoreWithoutCheckpointFails) {
  Rig r;
  auto model = r.model("alexnet", 0.02);
  auto client = r.client();
  bool failed = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& f) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    try {
      co_await c.restore(m);
    } catch (const Error&) {
      f = true;
    }
  }(*client, model, failed));
  r.eng.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(r.daemon->stats().failed_ops, 1u);
}

TEST(PortusE2ETest, SuccessiveCheckpointsAlternateSlots) {
  Rig r;
  auto model = r.model("alexnet", 0.02);
  auto client = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    for (std::uint64_t i = 1; i <= 4; ++i) {
      m.mutate_weights(i);
      const auto epoch = co_await c.checkpoint(m, i);
      EXPECT_EQ(epoch, i);
    }
  }(*client, model));
  r.eng.run();

  auto index = r.daemon->load_index("alexnet");
  EXPECT_EQ(index.max_epoch(), 4u);
  EXPECT_EQ(index.slot(0).epoch + index.slot(1).epoch, 7u);  // epochs 3 and 4
  EXPECT_EQ(index.slot(0).state, SlotState::kDone);
  EXPECT_EQ(index.slot(1).state, SlotState::kDone);
}

TEST(PortusE2ETest, MultiTenantConcurrentCheckpoints) {
  Rig r;
  std::vector<dnn::Model> models;
  std::vector<std::unique_ptr<PortusClient>> clients;
  std::vector<std::uint32_t> crcs;
  for (int i = 0; i < 4; ++i) {
    models.push_back(r.model(dnn::ModelZoo::table2_names()[static_cast<std::size_t>(i)],
                             0.02, i % 4));
    crcs.push_back(models.back().weights_crc());
    clients.push_back(r.client(i % 4));
  }
  for (int i = 0; i < 4; ++i) {
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
      m.mutate_weights(7);
      co_await c.restore(m);
    }(*clients[static_cast<std::size_t>(i)], models[static_cast<std::size_t>(i)]));
  }
  r.eng.run();
  EXPECT_EQ(r.daemon->stats().checkpoints, 4u);
  EXPECT_EQ(r.daemon->stats().restores, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(models[static_cast<std::size_t>(i)].weights_crc(),
              crcs[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(PortusE2ETest, CrashDuringCheckpointKeepsPreviousVersionRestorable) {
  Rig r;
  auto model = r.model("alexnet", 0.05);
  auto client = r.client();
  const auto crc_v1 = model.weights_crc();

  // First checkpoint completes; second is cut off mid-pull by running the
  // engine only partway, then the server crashes.
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    m.mutate_weights(2);
    co_await c.checkpoint(m, 2);  // will be interrupted
  }(*client, model));

  // Advance in small steps until the second checkpoint has begun (its slot
  // flipped ACTIVE) but not committed — a deterministic mid-pull snapshot.
  bool mid_pull = false;
  for (int step = 0; step < 100'000; ++step) {
    r.eng.run_for(20us);
    if (r.daemon->stats().checkpoints != 1u) continue;
    MIndex* live = r.daemon->find_live_index("alexnet");
    if (live == nullptr) continue;
    const bool active0 = live->slot(0).state == SlotState::kActive;
    const bool active1 = live->slot(1).state == SlotState::kActive;
    if (active0 || active1) {
      mid_pull = true;
      break;
    }
  }
  ASSERT_TRUE(mid_pull) << "never observed the second checkpoint in flight";
  ASSERT_EQ(r.daemon->stats().checkpoints, 1u);

  r.daemon->device().simulate_crash();

  // New daemon process recovers from PMEM.
  auto index_offset = [&] {
    PortusDaemon fresh{*r.cluster, r.server_node, r.rendezvous,
                       PortusDaemon::Config{.endpoint = "portusd-2"}};
    fresh.recover();
    EXPECT_EQ(fresh.model_table().size(), 1u);
    auto index = fresh.load_index("alexnet");
    const auto latest = index.latest_done_slot();
    EXPECT_TRUE(latest.has_value()) << "epoch-1 version must survive";
    EXPECT_EQ(index.slot(*latest).epoch, 1u);
    // And its contents are intact (CRC equals the epoch-1 weights).
    const auto& slot = index.slot(*latest);
    // Re-create the epoch-1 weights on a scratch model for comparison.
    return std::make_pair(slot.data_offset, index.slot_size());
  }();
  (void)index_offset;
  (void)crc_v1;
}

TEST(PortusE2ETest, DaemonRestartThenReRegisterAndRestore) {
  Rig r;
  auto model = r.model("resnet50", 0.03);
  auto client = r.client();
  const auto crc0 = model.weights_crc();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(*client, model));
  r.eng.run();

  // Clean shutdown (all persisted), then restart daemon + new client session.
  r.daemon->device().simulate_crash();  // only unflushed data would be lost
  PortusDaemon fresh{*r.cluster, r.server_node, r.rendezvous,
                     PortusDaemon::Config{.endpoint = "portusd-2"}};
  fresh.recover();
  fresh.start();

  auto client2 = std::make_unique<PortusClient>(*r.cluster, r.client_node,
                                                r.client_node.gpu(0), r.rendezvous,
                                                "portusd-2");
  model.mutate_weights(123);  // the "restarted" job has garbage weights
  bool restored = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint32_t crc, bool& ok) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);  // re-registration reuses the PMEM index
    co_await c.restore(m);
    EXPECT_EQ(m.weights_crc(), crc);
    ok = true;
  }(*client2, model, crc0, restored));
  r.eng.run();
  EXPECT_TRUE(restored);
  EXPECT_EQ(fresh.stats().restores, 1u);
}

TEST(PortusE2ETest, AsyncHookOverlapsTrainingWithLowStall) {
  Rig r;
  auto model = r.model("vgg19_bn", 0.10);  // ~55 MiB: pull ~10 ms
  auto client = r.client();

  dnn::TrainingStats sync_stats, async_stats;
  const dnn::TrainingConfig cfg{.iteration_time = 50ms, .update_fraction = 0.1,
                                .busy_fraction = 1.0, .mutate_weights = false};

  r.eng.spawn([](Rig& rig, PortusClient& c, dnn::Model& m, dnn::TrainingConfig config,
                 dnn::TrainingStats& sync_out, dnn::TrainingStats& async_out) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);

    PortusHook sync_hook{c, m, 1, PortusHook::Mode::kSync};
    co_await rig.eng.spawn(
        dnn::train(rig.eng, rig.client_node.gpu(0), &m, config, 10, sync_hook, sync_out))
        .join();

    PortusHook async_hook{c, m, 1, PortusHook::Mode::kAsync};
    co_await rig.eng.spawn(
        dnn::train(rig.eng, rig.client_node.gpu(0), &m, config, 10, async_hook, async_out))
        .join();
    co_await async_hook.drain();
    EXPECT_EQ(async_hook.stats().completed, 10u);
  }(r, *client, model, cfg, sync_stats, async_stats));
  r.eng.run();

  EXPECT_GT(sync_stats.checkpoint_stall, 5 * 10ms) << "sync mode stalls every iteration";
  EXPECT_LT(async_stats.checkpoint_stall, sync_stats.checkpoint_stall / 3)
      << "async mode must hide most of the pull behind F/B";
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(PortusE2ETest, RepackerFreesOutdatedVersionAfterFinish) {
  Rig r;
  auto model = r.model("alexnet", 0.02);
  auto client = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    m.mutate_weights(1);
    co_await c.checkpoint(m, 2);
    co_await c.finish(m);
  }(*client, model));
  r.eng.run();

  ASSERT_TRUE(r.daemon->finished_models().contains("alexnet"));
  const auto live_before = r.daemon->allocator().live_bytes();
  const auto report = Repacker{*r.daemon}.repack();
  EXPECT_EQ(report.slots_cleared, 1);
  EXPECT_GT(report.freed_outdated, 0u);
  EXPECT_LT(r.daemon->allocator().live_bytes(), live_before);

  // The newest version is still restorable.
  auto index = r.daemon->load_index("alexnet");
  ASSERT_TRUE(index.latest_done_slot().has_value());
  EXPECT_EQ(index.slot(*index.latest_done_slot()).epoch, 2u);
}

TEST(PortusE2ETest, PortusctlViewAndDump) {
  Rig r;
  auto model = r.model("swin_b", 0.02);
  auto client = r.client();
  storage::Ext4NvmeFs fs{r.eng, "share-fs"};

  bool dumped = false;
  r.eng.spawn([](Rig& rig, PortusClient& c, dnn::Model& m, storage::Ext4NvmeFs& out_fs,
                 bool& ok) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);

    Portusctl ctl{*rig.daemon};
    const auto infos = ctl.view();
    EXPECT_EQ(infos.size(), 1u);
    if (infos.size() != 1u) co_return;
    EXPECT_EQ(infos[0].name, "swin_b");
    EXPECT_EQ(infos[0].layers, m.layer_count());
    EXPECT_TRUE(infos[0].restorable);
    EXPECT_NE(ctl.render_view().find("swin_b"), std::string::npos);

    // Dump out of PMEM into the portable container and validate it.
    const auto file = co_await ctl.dump("swin_b");
    EXPECT_EQ(file.tensors.size(), m.layer_count());
    EXPECT_EQ(file.tensors[0].data, m.tensor(0).buffer().download());

    co_await ctl.dump_to("swin_b", out_fs, "/export/swin_b.ptck");
    EXPECT_TRUE(out_fs.exists("/export/swin_b.ptck"));
    const auto bytes = co_await out_fs.read_file("/export/swin_b.ptck");
    const auto parsed = storage::CheckpointSerializer::deserialize(bytes);
    EXPECT_EQ(parsed.model_name, "swin_b");
    ok = true;
  }(r, *client, model, fs, dumped));
  r.eng.run();
  EXPECT_TRUE(dumped);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// Property sweep: checkpoint/restore round-trips bit-exactly for every
// Table II model at small scale.
class PortusModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PortusModelSweep, RoundTrip) {
  Rig r;
  auto model = r.model(GetParam(), 0.01);
  auto client = r.client();
  const auto crc0 = model.weights_crc();
  bool ok = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint32_t crc, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    m.mutate_weights(5);
    co_await c.restore(m);
    EXPECT_EQ(m.weights_crc(), crc);
    done = true;
  }(*client, model, crc0, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Table2, PortusModelSweep,
                         ::testing::Values("alexnet", "convnext_base", "resnet50", "swin_b",
                                           "vgg19_bn", "vit_l_32", "bert"));

}  // namespace
}  // namespace portus::core
