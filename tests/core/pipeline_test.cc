// Pipelined datapath engine: window=1 serial equivalence, chunk-boundary
// edge cases, crash consistency mid-pipeline, stripe/window end-to-end
// correctness, and the client-side failure-recovery guard.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/pipeline.h"
#include "core/portusctl.h"
#include "dnn/model_zoo.h"
#include "mem/address_space.h"
#include "net/cluster.h"
#include "rdma/fabric.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

// --- chunk_spans -------------------------------------------------------------

struct IndexFixture {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  PmemAllocator alloc{device, PmemAllocator::Config{.table_offset = 4_KiB,
                                                    .table_capacity = 128,
                                                    .data_offset = 1_MiB,
                                                    .data_end = 64_MiB}};
  RegisterModelMsg reg = [] {
    RegisterModelMsg m;
    m.model_name = "chunky";
    const Bytes sizes[] = {100, 1024, 1030, 4096};
    for (std::size_t i = 0; i < 4; ++i) {
      m.tensors.push_back(TensorDesc{.name = "t" + std::to_string(i), .size = sizes[i]});
    }
    return m;
  }();
};

TEST(ChunkSpansTest, ZeroChunkBytesYieldsOneSpanPerTensor) {
  IndexFixture f;
  const auto idx = MIndex::create(f.device, f.alloc, f.reg);
  const auto spans = idx.chunk_spans(0);
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].tensor, i);
    EXPECT_EQ(spans[i].offset, 0u);
    EXPECT_EQ(spans[i].len, idx.tensors()[i].size);
    EXPECT_EQ(spans[i].offset_in_slot, idx.tensors()[i].offset_in_slot);
  }
}

TEST(ChunkSpansTest, SplitsTensorsAtChunkBoundaries) {
  IndexFixture f;
  const auto idx = MIndex::create(f.device, f.alloc, f.reg);
  const auto spans = idx.chunk_spans(1024);
  // 100 (< chunk): 1 span; 1024 (exact): 1; 1030 (one over): 1024 + 6;
  // 4096 (multiple): 4 x 1024.
  ASSERT_EQ(spans.size(), 1u + 1u + 2u + 4u);
  EXPECT_EQ(spans[0].len, 100u);
  EXPECT_EQ(spans[1].len, 1024u);
  EXPECT_EQ(spans[2].len, 1024u);
  EXPECT_EQ(spans[3].len, 6u);
  EXPECT_EQ(spans[3].offset, 1024u);
  EXPECT_EQ(spans[3].offset_in_slot, idx.tensors()[2].offset_in_slot + 1024);
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(spans[i].tensor, 3u);
    EXPECT_EQ(spans[i].len, 1024u);
    EXPECT_EQ(spans[i].offset, (i - 4) * 1024);
  }
  // Full coverage, in layout order, no overlap.
  Bytes covered = 0;
  for (const auto& s : spans) covered += s.len;
  EXPECT_EQ(covered, 100u + 1024u + 1030u + 4096u);
}

// --- wire-level serial equivalence ------------------------------------------

// Two NICs + DRAM segments wired through one fabric, with `lanes` QP pairs
// all delivering into one server-side CQ — the shape a daemon session has.
struct WireRig {
  static constexpr Bytes kRegion = 16_MiB;

  sim::Engine eng;
  mem::AddressSpace as;
  rdma::Fabric fabric{eng};
  rdma::RdmaNic client_nic{eng, "client/nic"};
  rdma::RdmaNic server_nic{eng, "server/nic"};
  std::shared_ptr<mem::MemorySegment> src =
      as.create_segment("client/dram", mem::MemoryKind::kDram, kRegion);
  std::shared_ptr<mem::MemorySegment> dst =
      as.create_segment("server/dram", mem::MemoryKind::kDram, kRegion);
  rdma::ProtectionDomain& cpd = client_nic.alloc_pd("cpd");
  rdma::ProtectionDomain& spd = server_nic.alloc_pd("spd");
  rdma::CompletionQueue client_cq{eng};
  rdma::CompletionQueue server_cq{eng};
  const rdma::MemoryRegion* src_mr = nullptr;
  const rdma::MemoryRegion* dst_mr = nullptr;
  std::vector<rdma::QueuePair*> server_qps;

  // Back-to-back 256-aligned "tensors", mirroring MIndex slot layout.
  std::vector<Bytes> sizes{8_KiB, 300, 64_KiB, 256_KiB + 512, 128_KiB};
  std::vector<Bytes> offsets;

  WireRig(int lanes, int depth) {
    src_mr = &cpd.register_region(rdma::RegionDesc{
        .segment = src.get(), .addr = src->base_addr(), .length = kRegion});
    dst_mr = &spd.register_region(rdma::RegionDesc{
        .segment = dst.get(), .addr = dst->base_addr(), .length = kRegion});
    for (int i = 0; i < lanes; ++i) {
      auto& sqp = fabric.create_qp(server_nic, spd, server_cq, depth);
      auto& cqp = fabric.create_qp(client_nic, cpd, client_cq);
      fabric.connect(sqp, cqp);
      server_qps.push_back(&sqp);
    }
    Bytes cursor = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      offsets.push_back(cursor);
      src->fill(cursor, sizes[i], std::byte{static_cast<unsigned char>(0xC0 + i)});
      cursor += (sizes[i] + 255) & ~Bytes{255};
    }
  }

  std::vector<TransferChunk> pull_chunks() const {
    std::vector<TransferChunk> chunks;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      chunks.push_back(TransferChunk{.kind = TransferChunk::Kind::kRead,
                                     .tensor_index = i,
                                     .len = sizes[i],
                                     .lkey = dst_mr->lkey,
                                     .local_addr = dst_mr->addr + offsets[i],
                                     .rkey = src_mr->rkey,
                                     .remote_addr = src_mr->addr + offsets[i]});
    }
    return chunks;
  }

  void expect_bytes_arrived() const {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_EQ(dst->crc(offsets[i], sizes[i]), src->crc(offsets[i], sizes[i]))
          << "tensor " << i << " corrupted in flight";
    }
  }
};

Duration run_serial_pulls(WireRig& rig) {
  rig.eng.spawn([](WireRig& r) -> sim::Process {
    for (std::size_t i = 0; i < r.sizes.size(); ++i) {
      const auto wc = co_await r.server_qps[0]->read_sync(
          r.dst_mr->lkey, r.dst_mr->addr + r.offsets[i], r.sizes[i], r.src_mr->rkey,
          r.src_mr->addr + r.offsets[i]);
      EXPECT_EQ(wc.status, rdma::WcStatus::kSuccess);
    }
  }(rig));
  rig.eng.run();
  return rig.eng.now();
}

Duration run_pipelined_pulls(WireRig& rig, int window, PipelinedTransfer::Stats* out) {
  rig.eng.spawn([](WireRig& r, int w, PipelinedTransfer::Stats* stats) -> sim::Process {
    PipelinedTransfer pipe{r.eng, r.server_qps, r.server_cq,
                           PipelinedTransfer::Config{.window = w}};
    auto chunks = r.pull_chunks();
    co_await pipe.run(std::move(chunks));
    if (stats != nullptr) *stats = pipe.stats();
  }(rig, window, out));
  rig.eng.run();
  return rig.eng.now();
}

TEST(PipelineTest, WindowOneMatchesSerialPathExactly) {
  WireRig serial_rig{1, 1};
  const Duration serial = run_serial_pulls(serial_rig);
  serial_rig.expect_bytes_arrived();

  WireRig pipe_rig{1, 1};
  PipelinedTransfer::Stats stats;
  const Duration pipelined = run_pipelined_pulls(pipe_rig, 1, &stats);
  pipe_rig.expect_bytes_arrived();

  EXPECT_EQ(serial.count(), pipelined.count())
      << "window=1 must reproduce the serial datapath timing bit-for-bit";
  EXPECT_EQ(stats.chunks, pipe_rig.sizes.size());
  EXPECT_EQ(stats.peak_outstanding, 1);
}

TEST(PipelineTest, WindowedStripedPullsOverlapAndStayByteIdentical) {
  WireRig serial_rig{1, 1};
  const Duration serial = run_serial_pulls(serial_rig);

  WireRig pipe_rig{2, 8};
  PipelinedTransfer::Stats stats;
  const Duration pipelined = run_pipelined_pulls(pipe_rig, 8, &stats);
  pipe_rig.expect_bytes_arrived();

  EXPECT_LT(pipelined.count(), serial.count())
      << "a deep window over two stripes must beat the serial path";
  EXPECT_GT(stats.peak_outstanding, 1);
  EXPECT_LE(stats.peak_outstanding, 2 * 8);
  EXPECT_GT(stats.mean_outstanding(), 1.0);
}

TEST(PipelineTest, FailedChunkDrainsWindowThenThrows) {
  WireRig rig{1, 4};
  bool threw = false;
  rig.eng.spawn([](WireRig& r, bool& out) -> sim::Process {
    PipelinedTransfer pipe{r.eng, r.server_qps, r.server_cq,
                           PipelinedTransfer::Config{.window = 4}};
    auto chunks = r.pull_chunks();
    chunks[2].rkey = 0xDEAD;  // poison one chunk mid-list
    try {
      co_await pipe.run(std::move(chunks));
    } catch (const Error&) {
      out = true;
    }
  }(rig, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(rig.eng.failed_process_count(), 0)
      << "the failure must surface in run(), not as an orphaned process";
}

// --- end-to-end through the daemon ------------------------------------------

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon;

  explicit Rig(PortusDaemon::Config config = {}) {
    daemon = std::make_unique<PortusDaemon>(*cluster, cluster->node("server"),
                                            rendezvous, config);
    daemon->start();
  }
  ~Rig() { eng.shutdown(); }
};

void paint_tensor(dnn::Model& m, std::size_t i, std::byte value) {
  auto& buf = m.tensor(i).buffer();
  buf.segment().fill(buf.offset(), buf.size(), value);
}

TEST(PipelineTest, ChunkedStripedCheckpointRestoreRoundTrips) {
  Rig r{PortusDaemon::Config{.pipeline_window = 4, .chunk_bytes = 4_KiB, .stripes = 2}};
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "resnet50", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                      "portusd", /*stripes=*/2};

  bool ok = false;
  r.eng.spawn([](Rig& rig, PortusClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    EXPECT_EQ(c.stats().negotiated_stripes, 2u);

    co_await c.checkpoint(m, 1);
    const auto crc_epoch1 = m.weights_crc();

    // Incremental round: local copies must interleave into the pipeline.
    paint_tensor(m, 0, std::byte{0xA0});
    paint_tensor(m, 7, std::byte{0xA7});
    const auto crc_epoch2 = m.weights_crc();
    std::vector<std::uint32_t> dirty{0, 7};
    co_await c.checkpoint_incremental(m, 2, std::move(dirty));

    m.mutate_weights(999);
    const auto epoch = co_await c.restore(m);
    EXPECT_EQ(epoch, 2u);
    EXPECT_EQ(m.weights_crc(), crc_epoch2)
        << "chunked+striped pull/copy/push must reassemble the exact state";
    EXPECT_NE(crc_epoch1, crc_epoch2);

    const auto& s = rig.daemon->stats();
    EXPECT_GT(s.chunks_posted, 3 * m.layer_count())
        << "4 KiB chunks over ~13 KiB tensors must split";
    EXPECT_GT(s.local_chunks, 0u) << "clean tensors ride the pipeline as local copies";
    EXPECT_GT(s.peak_window, 1);
    EXPECT_LE(s.peak_window, 2 * 4);
    EXPECT_GT(s.mean_window(), 0.0);
    done = true;
  }(r, client, model, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(PipelineTest, PipelinedCheckpointBeatsSerialEndToEnd) {
  const auto run_world = [](PortusDaemon::Config config, int stripes) {
    Rig r{std::move(config)};
    auto& gpu = r.cluster->node("client-volta").gpu(0);
    dnn::ModelZoo::Options opt;
    opt.scale = 0.02;
    auto model = dnn::ModelZoo::create(gpu, "resnet50", opt);
    PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                        "portusd", stripes};
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
    }(client, model));
    r.eng.run();
    EXPECT_EQ(r.eng.failed_process_count(), 0);
    return client.stats().last_checkpoint;
  };

  const Duration serial = run_world(PortusDaemon::Config{}, 1);
  const Duration pipelined = run_world(
      PortusDaemon::Config{.pipeline_window = 8, .chunk_bytes = 64_KiB, .stripes = 2}, 2);
  EXPECT_LT(to_seconds(pipelined), to_seconds(serial) * 0.6)
      << "windowed+striped datapath must clearly beat the serial loop "
      << "(serial " << serial.count() << " ns, pipelined " << pipelined.count() << " ns)";
}

TEST(PipelineTest, CrashMidPipelineNeverLeavesTornDoneSlot) {
  for (const double fraction : {0.3, 0.5, 0.7}) {
    Rig r{PortusDaemon::Config{.pipeline_window = 8, .chunk_bytes = 2_KiB, .stripes = 2}};
    auto& gpu = r.cluster->node("client-volta").gpu(0);
    dnn::ModelZoo::Options opt;
    opt.scale = 0.02;
    auto model = dnn::ModelZoo::create(gpu, "resnet50", opt);
    PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                        "portusd", /*stripes=*/2};

    // Epoch 1 completes cleanly.
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
    }(client, model));
    r.eng.run();
    ASSERT_EQ(r.eng.failed_process_count(), 0);
    const Duration full_op = client.stats().last_checkpoint;

    // Power fails partway through epoch 2, with a full transfer window in
    // flight and per-chunk persists racing the pulls.
    model.mutate_weights(2);
    bool finished = false;
    r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& done) -> sim::Process {
      try {
        co_await c.checkpoint(m, 2);
      } catch (const Error&) {
        // teardown mid-op
      }
      done = true;
    }(client, model, finished));
    const auto cut = r.eng.now() + Duration{static_cast<Duration::rep>(
                                       static_cast<double>(full_op.count()) * fraction)};
    r.eng.run_until(cut);
    ASSERT_FALSE(finished) << "fraction " << fraction << " must land mid-checkpoint";
    r.daemon->device().simulate_crash();

    // Recovery: whatever survives, a DONE slot must be fully persisted and
    // the interrupted slot must not be restorable.
    const auto idx = r.daemon->load_index("resnet50");
    const auto done_slot = idx.latest_done_slot();
    ASSERT_TRUE(done_slot.has_value()) << "epoch 1 must remain restorable";
    EXPECT_EQ(idx.slot(*done_slot).epoch, 1u)
        << "the interrupted epoch-2 slot must never surface as DONE";
    for (int s = 0; s < 2; ++s) {
      if (idx.slot(s).state == SlotState::kDone) {
        EXPECT_TRUE(
            r.daemon->device().is_persisted(idx.slot(s).data_offset, idx.slot_size()))
            << "slot " << s << " is DONE but holds unpersisted bytes";
      } else {
        EXPECT_NE(idx.slot(s).state, SlotState::kDone);
      }
    }
  }
}

TEST(PipelineTest, StatsSurfaceThroughPortusctl) {
  Rig r{PortusDaemon::Config{.pipeline_window = 4, .chunk_bytes = 8_KiB, .stripes = 2}};
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "alexnet", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                      "portusd", /*stripes=*/2};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    m.mutate_weights(5);
    co_await c.restore(m);
  }(client, model));
  r.eng.run();
  ASSERT_EQ(r.eng.failed_process_count(), 0);

  Portusctl ctl{*r.daemon};
  const auto text = ctl.render_stats();
  EXPECT_NE(text.find("peak window occupancy"), std::string::npos);
  EXPECT_NE(text.find("chunks posted"), std::string::npos);
  EXPECT_NE(text.find("queue delay"), std::string::npos);
  const auto& s = r.daemon->stats();
  EXPECT_GT(s.chunks_posted, 0u);
  EXPECT_EQ(s.chunks_posted, s.rdma_chunks + s.local_chunks);
  EXPECT_GE(s.queue_delay_max, s.mean_queue_delay());
}

// --- client-side failure guard (roundtrip RAII) ------------------------------

TEST(PipelineTest, FailedRoundtripDoesNotWedgeClient) {
  Rig r;
  // A "daemon" that accepts, reads one request, and dies without replying.
  r.cluster->listen("deadd");
  r.eng.spawn([](Rig& rig) -> sim::Process {
    auto socket = co_await rig.cluster->endpoint("deadd").accept();
    co_await socket->recv();
    socket->close();
  }(r));

  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "alexnet", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                      "deadd"};

  bool ok = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.connect();
    bool threw = false;
    try {
      co_await c.checkpoint(m, 1);
    } catch (const Disconnected&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // The op slot must be free again: a second attempt fails on the dead
    // socket, not on the "one op at a time" guard.
    try {
      co_await c.checkpoint(m, 2);
    } catch (const Error& e) {
      EXPECT_EQ(std::string{e.what()}.find("one control-plane"), std::string::npos)
          << "a failed roundtrip wedged op_in_flight_";
    }
    done = true;
  }(client, model, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace portus::core
