// Elastic Portus-Cluster (ISSUE 9): membership epochs, online shard
// migration, drain/decommission, permanent-failure repair, and the
// client-side EpochMismatch re-resolution loop — including the headline
// crashpoint walk over a live migration's persist fences.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/strformat.h"
#include "core/cluster/cluster_client.h"
#include "core/cluster/cluster_ctl.h"
#include "core/cluster/manifest.h"
#include "core/cluster/migration.h"
#include "core/daemon/daemon.h"
#include "core/daemon/fsck.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"
#include "sim/crashpoint.h"
#include "sim/fault.h"

namespace portus::core::cluster {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Manifest v2: the membership epoch + lifecycle states persist with every
// shard registration (the CRC'd record elasticity recovers from).

TEST(ElasticManifestTest, MembershipFieldsRoundtrip) {
  const std::vector<Bytes> sizes{96_MiB, 1_MiB, 40_MiB};
  const std::vector<std::string> names{"w0", "w1", "w2"};
  const std::vector<std::string> endpoints{"portusd0", "portusd1"};
  const auto plan = Placement::compute("gpt-tiny", sizes, 2, 2, 4);
  auto m = ShardManifest::from_plan(plan, endpoints, names, sizes);
  m.membership_epoch = 7;
  m.member_states = {MemberState::kActive, MemberState::kDraining};

  const auto back = ShardManifest::decode(m.encode());
  EXPECT_EQ(back.membership_epoch, 7u);
  EXPECT_EQ(back.shard_count, plan.shard_tensors.size());
  ASSERT_EQ(back.member_states.size(), 2u);
  EXPECT_EQ(back.member_states[0], MemberState::kActive);
  EXPECT_EQ(back.member_states[1], MemberState::kDraining);
}

// ---------------------------------------------------------------------------
// The elastic rig: N daemons on their own storage nodes, the first
// `founding` of them sealed into the initial membership; the rest start
// idle and may join later.

struct ElasticRig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster;
  QpRendezvous rendezvous;
  sim::FaultInjector faults{eng};
  ElasticCluster elastic;
  std::vector<std::unique_ptr<PortusDaemon>> daemons;

  ElasticRig(int nodes, int founding,
             ElasticCluster::Config ec = ElasticCluster::Config{})
      : elastic{eng, ec} {
    cluster = net::Cluster::sharded_testbed(eng, nodes);
    for (int i = 0; i < nodes; ++i) {
      PortusDaemon::Config cfg;
      cfg.endpoint = ep(i);
      cfg.faults = &faults;
      daemons.push_back(std::make_unique<PortusDaemon>(
          *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
      daemons.back()->start();
    }
    for (int i = 0; i < founding; ++i) elastic.add_member(ep(i), *daemons[i]);
    elastic.seal();
  }
  ~ElasticRig() { eng.shutdown(); }

  static std::string ep(int i) { return strf("portusd{}", i); }

  ClusterClient::Config client_config(std::uint32_t replicas, std::uint32_t shards) {
    ClusterClient::Config cfg;
    cfg.replicas = replicas;
    cfg.shard_count = shards;
    cfg.membership = &elastic;
    cfg.op_timeout = 50ms;
    return cfg;
  }

  dnn::Model make_model(double scale = 0.02) {
    dnn::ModelZoo::Options opt;
    opt.scale = scale;
    return dnn::ModelZoo::create(cluster->node("client-volta").gpu(0), "resnet50", opt);
  }
};

// ---------------------------------------------------------------------------
// join(): the new member receives its share of existing copies, the epoch
// bumps, every live daemon serves the new epoch, and subsequent ops
// re-resolve transparently.

TEST(ElasticTest, JoinMigratesCopiesAndBumpsEpoch) {
  ElasticRig r{3, 2};
  auto& volta = r.cluster->node("client-volta");
  auto model = r.make_model();

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous,
                       r.client_config(2, 4)};
  bool ok = false;
  std::uint32_t want = 0;
  r.eng.spawn([](ElasticRig& rig, ClusterClient& c, dnn::Model& m, std::uint32_t& crc,
                 bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    m.mutate_weights(2);
    co_await c.checkpoint(2);

    const std::string joiner = ElasticRig::ep(2);
    co_await rig.elastic.join(joiner, *rig.daemons[2]);

    // The resized ring keeps taking checkpoints: the first op eats one
    // EpochMismatch, re-resolves, and commits epoch 3.
    m.mutate_weights(3);
    const auto ck = co_await c.checkpoint(3);
    EXPECT_EQ(ck.epoch, 3u);
    EXPECT_FALSE(ck.degraded);
    crc = m.weights_crc();

    m.mutate_weights(99);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 3u);
    EXPECT_FALSE(rr.degraded);
    done = true;
  }(r, client, model, want, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), want);
  EXPECT_EQ(r.eng.failed_process_count(), 0);

  // seal() = epoch 1, the join barrier = epoch 2, pushed to every member
  // including the joiner.
  EXPECT_EQ(r.elastic.membership().epoch, 2u);
  EXPECT_EQ(r.elastic.membership().active_positions().size(), 3u);
  for (auto& d : r.daemons) EXPECT_EQ(d->membership_epoch(), 2u);

  // The joiner physically holds migrated copies at the source's epochs.
  const auto& st = r.elastic.stats();
  EXPECT_GT(st.copies_moved, 0u);
  EXPECT_GT(st.bytes_streamed, 0u);
  EXPECT_EQ(st.models_migrated, 1u);
  EXPECT_GE(st.barriers, 1u);
  EXPECT_FALSE(r.daemons[2]->model_table().names().empty());
  for (const auto& name : r.daemons[2]->model_table().names()) {
    const MIndex* idx = r.daemons[2]->find_live_index(name);
    ASSERT_NE(idx, nullptr);
    const auto done_slot = idx->latest_done_slot();
    ASSERT_TRUE(done_slot.has_value());
    EXPECT_GE(idx->slot(*done_slot).epoch, 2u);
  }
  EXPECT_GE(client.stats().epoch_reresolutions, 1u);
}

// ---------------------------------------------------------------------------
// Headline acceptance: a 1 -> 4 -> 2 resize under continuous checkpoint
// load produces ZERO failed client ops, and the final restore is bit-exact.

TEST(ElasticTest, ResizeOneToFourToTwoUnderLoadZeroFailedOps) {
  ElasticRig r{4, 1};
  auto& volta = r.cluster->node("client-volta");
  auto model = r.make_model();

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous,
                       r.client_config(2, 8)};
  bool stop = false;
  bool loader_done = false, resize_done = false;
  std::uint64_t ops = 0, last_epoch = 0;
  std::uint32_t last_crc = 0;

  // The loader: checkpoint rounds back to back until the resize sequence
  // finishes. Any failed op throws out of the coroutine and trips
  // failed_process_count below.
  r.eng.spawn([](ClusterClient& c, dnn::Model& m, bool& stop_flag, std::uint64_t& n,
                 std::uint64_t& epoch, std::uint32_t& crc, bool& done) -> sim::Process {
    co_await c.register_model(m);
    std::uint64_t k = 0;
    while (!stop_flag) {
      m.mutate_weights(++k);
      const auto golden = m.weights_crc();
      const auto ck = co_await c.checkpoint(k);
      ++n;
      epoch = ck.epoch;
      crc = golden;
    }
    done = true;
  }(client, model, stop, ops, last_epoch, last_crc, loader_done));

  // The resize sequence: grow 1 -> 4, then shrink 4 -> 2 (drain +
  // decommission two members), with the loader live throughout. Each step
  // waits for the loader to land at least one more checkpoint, so every
  // membership epoch sees live traffic (that is the point of the test).
  r.eng.spawn([](ElasticRig& rig, const std::uint64_t& committed, bool& stop_flag,
                 bool& done) -> sim::Process {
    const auto traffic = [&](std::uint64_t floor) -> sim::SubTask<> {
      while (committed <= floor) co_await rig.eng.sleep(100us);
    };
    co_await traffic(0);
    for (int i = 1; i <= 3; ++i) {
      const std::string joiner = ElasticRig::ep(i);
      co_await rig.elastic.join(joiner, *rig.daemons[i]);
      co_await traffic(committed);
    }
    for (int i = 0; i <= 1; ++i) {
      const std::string leaver = ElasticRig::ep(i);
      co_await rig.elastic.drain(leaver);
      co_await traffic(committed);
      rig.elastic.decommission(leaver);
      co_await traffic(committed);
    }
    stop_flag = true;
    done = true;
  }(r, ops, stop, resize_done));

  r.eng.run();
  ASSERT_TRUE(loader_done);
  ASSERT_TRUE(resize_done);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
  ASSERT_GT(ops, 0u);

  // Zero failed ops: every round the loader issued committed, and the
  // resizes cost only re-resolutions (never a lane death — nothing
  // crashed, members only moved states).
  EXPECT_EQ(client.stats().checkpoints, ops);
  EXPECT_EQ(client.stats().lane_failures, 0u);
  EXPECT_GE(client.stats().epoch_reresolutions, 3u);

  // seal + 3 joins + 2 drains + 2 decommissions = epoch 8, 2 actives left.
  EXPECT_EQ(r.elastic.membership().epoch, 8u);
  EXPECT_EQ(r.elastic.membership().active_positions().size(), 2u);
  EXPECT_GT(r.elastic.stats().copies_moved, 0u);

  // The last acked round restores bit-exact from the shrunken ring.
  bool restored = false;
  r.eng.spawn([](ClusterClient& c, dnn::Model& m, std::uint64_t epoch,
                 bool& done) -> sim::Process {
    m.mutate_weights(424242);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, epoch);
    done = true;
  }(client, model, last_epoch, restored));
  r.eng.run();
  ASSERT_TRUE(restored);
  EXPECT_EQ(model.weights_crc(), last_crc);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

// ---------------------------------------------------------------------------
// drain + decommission: the leaving member's copies are re-homed before it
// goes DOWN; restores keep working; cluster-status shows the lifecycle.

TEST(ElasticTest, DrainThenDecommissionKeepsDataReachable) {
  ElasticRig r{3, 3};
  auto& volta = r.cluster->node("client-volta");
  auto model = r.make_model();

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous,
                       r.client_config(2, 6)};
  bool ok = false;
  std::uint32_t want = 0;
  r.eng.spawn([](ElasticRig& rig, ClusterClient& c, dnn::Model& m, std::uint32_t& crc,
                 bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    m.mutate_weights(2);
    co_await c.checkpoint(2);
    crc = m.weights_crc();

    const std::string leaver = ElasticRig::ep(0);
    co_await rig.elastic.drain(leaver);
    EXPECT_EQ(rig.elastic.membership().find(leaver)->state, MemberState::kDraining);
    rig.elastic.decommission(leaver);
    EXPECT_EQ(rig.elastic.membership().find(leaver)->state, MemberState::kDown);

    m.mutate_weights(77);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 2u);
    EXPECT_FALSE(rr.degraded);
    done = true;
  }(r, client, model, want, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), want);
  EXPECT_EQ(r.eng.failed_process_count(), 0);

  // seal = epoch 1, drain = epoch 2, decommission = epoch 3. The
  // decommissioned member is never contacted again: it keeps serving the
  // drain-era epoch while the survivors moved on.
  EXPECT_EQ(r.elastic.membership().epoch, 3u);
  EXPECT_EQ(r.daemons[0]->membership_epoch(), 2u);
  EXPECT_EQ(r.daemons[1]->membership_epoch(), 3u);
  EXPECT_EQ(r.daemons[2]->membership_epoch(), 3u);

  // Every shard is fully replicated on the two survivors at epoch 2.
  for (int i : {1, 2}) {
    std::uint64_t newest = 0;
    for (const auto& name : r.daemons[i]->model_table().names()) {
      const MIndex* idx = r.daemons[i]->find_live_index(name);
      ASSERT_NE(idx, nullptr);
      const auto done_slot = idx->latest_done_slot();
      ASSERT_TRUE(done_slot.has_value());
      newest = std::max(newest, idx->slot(*done_slot).epoch);
    }
    EXPECT_EQ(newest, 2u);
  }

  // cluster-status: EPOCH + MSTATE columns and the membership footer.
  std::vector<PortusDaemon*> ptrs;
  for (auto& d : r.daemons) ptrs.push_back(d.get());
  const auto status =
      ClusterCtl::render_status(ptrs, &client, &r.elastic.membership());
  EXPECT_NE(status.find("MSTATE"), std::string::npos);
  EXPECT_NE(status.find("DOWN"), std::string::npos);
  EXPECT_NE(status.find("membership: epoch 3, 3 members (2 active)"),
            std::string::npos);
  EXPECT_NE(status.find("epoch re-resolves"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Permanent failure: a crashed member is declared DOWN and its copies are
// re-replicated from the survivors — redundancy is restored, not just
// routed around.

TEST(ElasticTest, RepairReplicatesAfterPermanentFailure) {
  ElasticRig r{3, 3};
  auto& volta = r.cluster->node("client-volta");
  auto model = r.make_model();

  ClusterClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous,
                       r.client_config(2, 6)};
  bool ok = false;
  std::uint32_t want = 0;
  r.eng.spawn([](ElasticRig& rig, ClusterClient& c, dnn::Model& m, std::uint32_t& crc,
                 bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    m.mutate_weights(2);
    co_await c.checkpoint(2);
    crc = m.weights_crc();

    rig.faults.kill_now("portusd1");  // unrecoverable crash-stop
    const std::string failed = ElasticRig::ep(1);
    co_await rig.elastic.repair(failed);
    EXPECT_EQ(rig.elastic.membership().find(failed)->state, MemberState::kDown);

    // Post-repair the two survivors hold every shard twice; the restore
    // runs entirely on primaries of the new placement.
    m.mutate_weights(99);
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 2u);
    EXPECT_FALSE(rr.degraded);
    done = true;
  }(r, client, model, want, ok));
  r.eng.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(model.weights_crc(), want);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
  EXPECT_GT(r.elastic.stats().repaired_copies, 0u);

  // Redundancy check: both survivors hold all 6 shards at epoch 2.
  for (int i : {0, 2}) {
    std::size_t copies = 0;
    for (const auto& name : r.daemons[i]->model_table().names()) {
      const MIndex* idx = r.daemons[i]->find_live_index(name);
      ASSERT_NE(idx, nullptr);
      const auto done_slot = idx->latest_done_slot();
      ASSERT_TRUE(done_slot.has_value());
      EXPECT_EQ(idx->slot(*done_slot).epoch, 2u) << name;
      ++copies;
    }
    EXPECT_EQ(copies, 6u) << "survivor " << i << " missing re-replicated shards";
  }
}

// ---------------------------------------------------------------------------
// Satellite: total replica loss. With R=1 and the only holder dead, the
// restore must fail with a clean error — no hang (the finite op_timeout
// watchdog), no partial success. Restarting the daemon over its intact
// PMEM then revives the lane and the next restore succeeds.

TEST(ElasticTest, TotalReplicaLossCleanErrorThenRevival) {
  sim::Engine eng;
  auto cluster = net::Cluster::sharded_testbed(eng, 2);
  QpRendezvous rendezvous;
  sim::FaultInjector faults{eng};
  std::vector<std::unique_ptr<PortusDaemon>> daemons;
  ClusterClient::Config ccfg;
  ccfg.replicas = 1;  // every shard has exactly one home
  ccfg.op_timeout = 50ms;
  for (int i = 0; i < 2; ++i) {
    PortusDaemon::Config cfg;
    cfg.endpoint = strf("portusd{}", i);
    cfg.faults = &faults;
    ccfg.endpoints.push_back(cfg.endpoint);
    daemons.push_back(std::make_unique<PortusDaemon>(
        *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
    daemons.back()->start();
  }

  auto& volta = cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);
  ClusterClient client{*cluster, volta, volta.gpu(0), rendezvous, ccfg};

  bool done = false;
  bool threw_cleanly = false;
  std::uint32_t want = 0;
  eng.spawn([](sim::Engine& eng, net::Cluster& world, sim::FaultInjector& faults,
               std::vector<std::unique_ptr<PortusDaemon>>& ds, QpRendezvous& rdv,
               ClusterClient& c, dnn::Model& m, std::uint32_t& crc, bool& threw,
               bool& ok) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    crc = m.weights_crc();

    faults.kill_now("portusd0");
    m.mutate_weights(5);
    try {
      co_await c.restore();
    } catch (const Error&) {
      threw = true;  // clean failure: shards on portusd0 have no copy left
    }

    // Revive: a fresh daemon process over the same (intact) PMEM device and
    // endpoint. Destroy the dead one first — its destructor deregisters the
    // fault target and releases the listener name.
    ds[0].reset();
    PortusDaemon::Config cfg;
    cfg.endpoint = "portusd0";
    cfg.faults = &faults;
    ds[0] = std::make_unique<PortusDaemon>(world, world.node("pmem0"), rdv, cfg);
    ds[0]->recover();
    ds[0]->start();
    co_await eng.sleep(10us);

    co_await c.refresh_placement();  // revives the down lane, re-registers
    const auto rr = co_await c.restore();
    EXPECT_EQ(rr.epoch, 1u);
    ok = true;
  }(eng, *cluster, faults, daemons, rendezvous, client, model, want, threw_cleanly,
    done));
  eng.run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(threw_cleanly) << "restore with every replica down must throw";
  EXPECT_EQ(model.weights_crc(), want);
  EXPECT_GE(client.stats().lane_failures, 1u);
  EXPECT_GE(client.stats().lane_revivals, 1u);
  EXPECT_EQ(eng.failed_process_count(), 0);
  eng.shutdown();
}

// ---------------------------------------------------------------------------
// Headline crash walk: power cut at EVERY persist fence of a live shard
// migration. The destination image must be fsck-clean at every boundary
// (DONE slots are durability proofs, torn streams demote, never corrupt),
// and the source — which migration never mutates — retains every acked
// epoch throughout, so acked checkpoints are recoverable from one side or
// the other at any cut.

constexpr Bytes kWalkDevdax = 64_MiB;

struct MigrationRecording {
  std::vector<sim::CrashPoint> points;
  std::uint64_t acked_epoch = 0;
};

MigrationRecording record_migration_workload() {
  MigrationRecording rec;
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "client", .gpu_count = 1})
                   .add_node({.name = "src", .pmem_devdax = kWalkDevdax})
                   .add_node({.name = "dst", .pmem_devdax = kWalkDevdax})
                   .build(eng);
  QpRendezvous rendezvous;
  sim::FaultInjector faults{eng};
  ElasticCluster::Config ec;
  ec.replicas = 2;
  ec.stream_chunk = 32_KiB;  // many data fences per migrated copy
  ElasticCluster elastic{eng, ec};

  std::vector<std::unique_ptr<PortusDaemon>> daemons;
  for (const auto* node : {"src", "dst"}) {
    PortusDaemon::Config cfg;
    cfg.endpoint = strf("portusd{}", daemons.size());
    cfg.faults = &faults;
    daemons.push_back(std::make_unique<PortusDaemon>(*world, world->node(node),
                                                     rendezvous, cfg));
    daemons.back()->start();
  }
  elastic.add_member("portusd0", *daemons[0]);
  elastic.seal();

  auto& client_node = world->node("client");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(client_node.gpu(0), "alexnet", opt);
  ClusterClient::Config ccfg;
  ccfg.replicas = 2;
  ccfg.shard_count = 4;
  ccfg.membership = &elastic;
  ccfg.op_timeout = 50ms;
  ClusterClient client{*world, client_node, client_node.gpu(0), rendezvous, ccfg};

  // Record only the DESTINATION device: the walk probes the half-written
  // migration target. The source never sees a write during the stream.
  sim::CrashpointRecorder recorder{world->node("dst").devdax().device()};
  eng.spawn([](ElasticCluster& ec, PortusDaemon& joiner, ClusterClient& c,
               dnn::Model& m, MigrationRecording& out) -> sim::Process {
    co_await c.register_model(m);
    for (std::uint64_t k = 1; k <= 2; ++k) {
      m.mutate_weights(k);
      const auto ck = co_await c.checkpoint(k);
      out.acked_epoch = ck.epoch;
    }
    const std::string joiner_ep = "portusd1";
    co_await ec.join(joiner_ep, joiner);
  }(elastic, *daemons[1], client, model, rec));
  eng.run();
  recorder.detach();
  rec.points = recorder.points();

  // The source side of the claim, checked once (it is boundary-invariant:
  // migration only READS the source): every shard copy still serves the
  // acked epoch, and the image scrubs clean.
  EXPECT_GT(elastic.stats().copies_moved, 0u);
  for (const auto& name : daemons[0]->model_table().names()) {
    const MIndex* idx = daemons[0]->find_live_index(name);
    EXPECT_NE(idx, nullptr);
    if (idx == nullptr) continue;
    const auto done_slot = idx->latest_done_slot();
    EXPECT_TRUE(done_slot.has_value());
    if (!done_slot.has_value()) continue;
    EXPECT_EQ(idx->slot(*done_slot).epoch, rec.acked_epoch) << name;
  }
  auto src_report = Fsck{*daemons[0]}.run(/*repair=*/false);
  EXPECT_TRUE(src_report.clean()) << "migration dirtied the source image";

  eng.shutdown();
  return rec;
}

TEST(ElasticTest, MigrationCrashWalkLeavesBothSidesFsckClean) {
  const auto rec = record_migration_workload();
  ASSERT_EQ(rec.acked_epoch, 2u);
  EXPECT_GE(rec.points.size(), 10u) << "migration recorded too few persist fences";

  for (const auto& p : rec.points) {
    SCOPED_TRACE(::testing::Message() << "crash point #" << p.ordinal << " (fence "
                                      << p.persist_seq << ", "
                                      << (p.after_persist ? "after" : "before") << ")");
    sim::Engine eng;
    auto world = net::Cluster::Builder{}
                     .add_node({.name = "dst", .pmem_devdax = kWalkDevdax})
                     .build(eng);
    QpRendezvous rendezvous;
    PortusDaemon daemon{*world, world->node("dst"), rendezvous};
    auto& device = world->node("dst").devdax().device();
    sim::CrashpointRecorder::materialize(p, device, /*seed=*/0xC0FFEEull + p.ordinal);

    ASSERT_NO_THROW(daemon.recover());

    // Any DONE slot the cut left behind is a durability proof: CRC block
    // present at the exact epoch, payload bit-identical, and the epoch is
    // one the source actually committed (migration carries source epochs,
    // it never invents them).
    for (const auto& name : daemon.model_table().names()) {
      std::optional<MIndex> index;
      try {
        index.emplace(daemon.load_index(name));
      } catch (const Error&) {
        continue;  // torn mid-registration record; fsck demotes it below
      }
      for (int i = 0; i < 2; ++i) {
        const auto& slot = index->slot(i);
        if (slot.state != SlotState::kDone || index->phantom()) continue;
        const auto block = index->payload_crcs(i);
        ASSERT_TRUE(block.has_value()) << "DONE slot without payload-CRC block";
        EXPECT_EQ(block->epoch, slot.epoch);
        const auto& tensors = index->tensors();
        ASSERT_EQ(block->crcs.size(), tensors.size());
        for (std::size_t t = 0; t < tensors.size(); ++t) {
          EXPECT_EQ(device.crc(slot.data_offset + tensors[t].offset_in_slot,
                               tensors[t].size),
                    block->crcs[t])
              << "migrated tensor " << t << " of " << name << " not bit-exact";
        }
        EXPECT_GE(slot.epoch, 1u);
        EXPECT_LE(slot.epoch, rec.acked_epoch) << "epoch the source never committed";
      }
    }

    // fsck: a cut mid-stream may leave ACTIVE leftovers and torn records —
    // never payload corruption. A second pass finds nothing.
    auto report = Fsck{daemon}.run(/*repair=*/true);
    EXPECT_EQ(report.corrupt_demoted, 0) << "power cut corrupted a DONE slot";
    EXPECT_EQ(report.corrupt_tensors, 0);
    EXPECT_EQ(report.overlap_violations, 0);
    EXPECT_TRUE(Fsck{daemon}.run(/*repair=*/true).clean());

    eng.shutdown();
    if (::testing::Test::HasFatalFailure()) break;
  }
}

}  // namespace
}  // namespace portus::core::cluster
