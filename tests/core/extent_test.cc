// Extent planner (core/daemon/extent.h): fusion-rule unit coverage over
// hand-built span lists, layout interaction with MIndex packed slots and
// chunk_spans, and end-to-end proofs that the coalesced multi-SGE datapath
// round-trips bytes, keeps per-tensor CRCs a durability proof, and matches
// the classic datapath when disabled.
#include "core/daemon/extent.h"

#include <gtest/gtest.h>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/fsck.h"
#include "core/portusctl.h"
#include "dnn/model.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

// --- planner unit tests ------------------------------------------------------

// A PMEM-dense row of whole tensors: tensor i starts exactly where i-1 ends.
std::vector<IndexedTensor> dense_tensors(const std::vector<Bytes>& sizes) {
  std::vector<IndexedTensor> ts;
  Bytes cursor = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ts.push_back(IndexedTensor{.name = "t" + std::to_string(i),
                               .dtype = dnn::DType::kU8,
                               .shape = {static_cast<std::int64_t>(sizes[i])},
                               .size = sizes[i],
                               .offset_in_slot = cursor});
    cursor += sizes[i];
  }
  return ts;
}

std::vector<ChunkSpan> whole_spans(const std::vector<IndexedTensor>& ts) {
  std::vector<ChunkSpan> spans;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    spans.push_back(ChunkSpan{.tensor = i,
                              .offset = 0,
                              .offset_in_slot = ts[i].offset_in_slot,
                              .len = ts[i].size});
  }
  return spans;
}

void expect_identity(const std::vector<Extent>& extents,
                     const std::vector<ChunkSpan>& spans) {
  ASSERT_EQ(extents.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& e = extents[i];
    ASSERT_EQ(e.members.size(), 1u) << "extent " << i;
    EXPECT_FALSE(e.coalesced());
    EXPECT_EQ(e.members[0].tensor, spans[i].tensor);
    EXPECT_EQ(e.members[0].offset, spans[i].offset);
    EXPECT_EQ(e.members[0].offset_in_slot, spans[i].offset_in_slot);
    EXPECT_EQ(e.members[0].len, spans[i].len);
    EXPECT_EQ(e.offset_in_slot, spans[i].offset_in_slot);
    EXPECT_EQ(e.len, spans[i].len);
  }
}

TEST(ExtentPlanTest, ThresholdZeroIsBitForBitIdentity) {
  const auto ts = dense_tensors({100, 200, 300, 64});
  const auto spans = whole_spans(ts);
  expect_identity(plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 0,
                                                       .max_sges = 16}),
                  spans);
  // max_sges == 1 disables coalescing just the same.
  expect_identity(plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 4_KiB,
                                                       .max_sges = 1}),
                  spans);
}

TEST(ExtentPlanTest, FusesDenseRunsUpToMaxSges) {
  const auto ts = dense_tensors(std::vector<Bytes>(10, 256));
  const auto spans = whole_spans(ts);
  const auto extents =
      plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 4_KiB, .max_sges = 4});
  ASSERT_EQ(extents.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(extents[0].members.size(), 4u);
  EXPECT_EQ(extents[1].members.size(), 4u);
  EXPECT_EQ(extents[2].members.size(), 2u);
  Bytes cursor = 0;
  std::size_t next_tensor = 0;
  for (const auto& e : extents) {
    EXPECT_EQ(e.offset_in_slot, cursor);
    Bytes sum = 0;
    for (const auto& m : e.members) {
      EXPECT_EQ(m.tensor, next_tensor++) << "planner must never reorder spans";
      sum += m.len;
    }
    EXPECT_EQ(e.len, sum);
    cursor += e.len;
  }
}

TEST(ExtentPlanTest, TensorExactlyAtThresholdFusesOneOverDoesNot) {
  const auto ts = dense_tensors({4_KiB, 4_KiB, 4_KiB + 1, 4_KiB});
  const auto spans = whole_spans(ts);
  const auto extents =
      plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 4_KiB, .max_sges = 8});
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].members.size(), 2u) << "<= threshold must fuse";
  EXPECT_EQ(extents[1].members.size(), 1u) << "one byte over must stay standalone";
  EXPECT_EQ(extents[1].len, 4_KiB + 1);
  EXPECT_EQ(extents[2].members.size(), 1u);
  EXPECT_FALSE(extents[2].coalesced());
}

TEST(ExtentPlanTest, PmemGapBreaksRun) {
  // t1 ends at 300; t2 was padded (e.g. a dtype-alignment hole) to 304.
  auto ts = dense_tensors({200, 100, 100});
  ts[2].offset_in_slot = 304;
  auto spans = whole_spans(ts);
  const auto extents =
      plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 4_KiB, .max_sges = 8});
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].members.size(), 2u);
  EXPECT_EQ(extents[0].len, 300u);
  EXPECT_EQ(extents[1].members.size(), 1u);
  EXPECT_EQ(extents[1].offset_in_slot, 304u);
}

TEST(ExtentPlanTest, PartialSpansOfChunkedTensorsStayStandalone) {
  // One 8 KiB tensor chunked into 2 KiB spans: each span is PMEM-dense with
  // the previous one, but none is a whole tensor, so nothing fuses.
  const auto ts = dense_tensors({8_KiB});
  std::vector<ChunkSpan> spans;
  for (Bytes off = 0; off < 8_KiB; off += 2_KiB) {
    spans.push_back(ChunkSpan{.tensor = 0, .offset = off, .offset_in_slot = off,
                              .len = 2_KiB});
  }
  const auto extents =
      plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 16_KiB, .max_sges = 8});
  expect_identity(extents, spans);
}

TEST(ExtentPlanTest, ZeroLengthTensorDoesNotInterruptDenseRun) {
  // t1 is a 0-dim optimizer scalar with zero bytes: it must become its own
  // empty extent while its neighbors still fuse across it.
  const auto ts = dense_tensors({256, 0, 256});
  const auto spans = whole_spans(ts);
  ASSERT_EQ(spans[1].len, 0u);
  const auto extents =
      plan_extents(spans, ts, ExtentConfig{.coalesce_threshold = 4_KiB, .max_sges = 8});
  ASSERT_EQ(extents.size(), 2u);
  // The empty extent is emitted at its position; the open run flushes later.
  EXPECT_EQ(extents[0].len, 0u);
  EXPECT_EQ(extents[0].members.size(), 1u);
  EXPECT_EQ(extents[0].members[0].tensor, 1u);
  EXPECT_EQ(extents[1].members.size(), 2u) << "neighbors of a 0-B tensor stay dense";
  EXPECT_EQ(extents[1].members[0].tensor, 0u);
  EXPECT_EQ(extents[1].members[1].tensor, 2u);
  EXPECT_EQ(extents[1].len, 512u);
}

TEST(ExtentPlanTest, TransferClassBoundarySplitsRun) {
  const auto ts = dense_tensors({256, 256, 256, 256});
  const auto spans = whole_spans(ts);
  const std::vector<bool> dirty{true, true, false, false};
  const auto extents = plan_extents(
      spans, ts, ExtentConfig{.coalesce_threshold = 4_KiB, .max_sges = 8}, dirty);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].members.size(), 2u);
  EXPECT_EQ(extents[1].members.size(), 2u);
  EXPECT_EQ(extents[1].members[0].tensor, 2u)
      << "a dirty RDMA read must never fuse with a clean local copy";
}

// --- MIndex layout interaction ----------------------------------------------

struct IndexFixture {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  PmemAllocator alloc{device, PmemAllocator::Config{.table_offset = 4_KiB,
                                                    .table_capacity = 128,
                                                    .data_offset = 1_MiB,
                                                    .data_end = 64_MiB}};
};

TEST(ExtentPlanTest, PackedLayoutMakesSmallRunsDenseAndDtypePadBreaksThem) {
  IndexFixture f;
  RegisterModelMsg m;
  m.model_name = "mixed";
  // f32 400 B, f16 6 B, f32 200 B: the f16 tensor ends at 406, so the next
  // f32 tensor pads to 408 — a 2-byte hole the planner must refuse to cross.
  m.tensors.push_back(TensorDesc{.name = "w0", .dtype = dnn::DType::kF32,
                                 .shape = {100}, .size = 400});
  m.tensors.push_back(TensorDesc{.name = "norm", .dtype = dnn::DType::kF16,
                                 .shape = {3}, .size = 6});
  m.tensors.push_back(TensorDesc{.name = "w1", .dtype = dnn::DType::kF32,
                                 .shape = {50}, .size = 200});
  const auto idx = MIndex::create(f.device, f.alloc, m, /*pack_threshold=*/4_KiB);
  EXPECT_EQ(idx.tensors()[0].offset_in_slot, 0u);
  EXPECT_EQ(idx.tensors()[1].offset_in_slot, 400u);
  EXPECT_EQ(idx.tensors()[2].offset_in_slot, 408u) << "f32 must pad 406 -> 408";

  const auto extents = plan_extents(idx.chunk_spans(0), idx.tensors(),
                                    ExtentConfig{.coalesce_threshold = 4_KiB,
                                                 .max_sges = 8});
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].members.size(), 2u);
  EXPECT_EQ(extents[1].members.size(), 1u);
}

TEST(ExtentPlanTest, ChunkSpansOfLargeTensorsInterleaveWithFusedRuns) {
  IndexFixture f;
  RegisterModelMsg m;
  m.model_name = "mixed-sizes";
  const Bytes sizes[] = {512, 512, 16_KiB, 512, 512};
  for (std::size_t i = 0; i < 5; ++i) {
    m.tensors.push_back(TensorDesc{.name = "t" + std::to_string(i),
                                   .dtype = dnn::DType::kU8,
                                   .shape = {static_cast<std::int64_t>(sizes[i])},
                                   .size = sizes[i]});
  }
  const auto idx = MIndex::create(f.device, f.alloc, m, /*pack_threshold=*/4_KiB);
  const auto spans = idx.chunk_spans(4_KiB);  // the 16 KiB tensor -> 4 spans
  ASSERT_EQ(spans.size(), 2u + 4u + 2u);
  const auto extents = plan_extents(spans, idx.tensors(),
                                    ExtentConfig{.coalesce_threshold = 4_KiB,
                                                 .max_sges = 8});
  ASSERT_EQ(extents.size(), 1u + 4u + 1u);
  EXPECT_EQ(extents[0].members.size(), 2u);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(extents[static_cast<std::size_t>(i)].members.size(), 1u)
        << "chunk " << i << " of the large tensor must stay standalone";
  }
  EXPECT_EQ(extents[5].members.size(), 2u);
  // Identity check: with coalescing off the same spans pass through 1:1.
  expect_identity(plan_extents(spans, idx.tensors(),
                               ExtentConfig{.coalesce_threshold = 0, .max_sges = 8}),
                  spans);
}

TEST(ExtentPlanTest, ZeroLengthTensorsGetExactlyOneEmptySpan) {
  IndexFixture f;
  RegisterModelMsg m;
  m.model_name = "scalars";
  m.tensors.push_back(TensorDesc{.name = "a", .shape = {64}, .size = 256});
  m.tensors.push_back(TensorDesc{.name = "step", .shape = {0}, .size = 0});
  m.tensors.push_back(TensorDesc{.name = "b", .shape = {64}, .size = 256});
  const auto idx = MIndex::create(f.device, f.alloc, m, /*pack_threshold=*/4_KiB);
  for (const Bytes chunk : {Bytes{0}, Bytes{128}, 4_KiB}) {
    const auto spans = idx.chunk_spans(chunk);
    std::size_t empty = 0;
    for (const auto& s : spans) {
      if (s.tensor == 1) {
        ++empty;
        EXPECT_EQ(s.len, 0u);
        EXPECT_EQ(s.offset, 0u);
      }
    }
    EXPECT_EQ(empty, 1u) << "chunk_bytes " << chunk
                         << ": a 0-B tensor must emit exactly one empty span";
  }
}

// --- end-to-end through the daemon ------------------------------------------

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon;

  explicit Rig(PortusDaemon::Config config = {}) {
    daemon = std::make_unique<PortusDaemon>(*cluster, cluster->node("server"),
                                            rendezvous, config);
    daemon->start();
  }
  ~Rig() { eng.shutdown(); }
};

// A GPT-ish small-tensor mix: per block a 2 KiB weight sliver, a 1 KiB
// projection and two 256 B bias/norm vectors, plus one chunked 64 KiB
// embedding at the end. Dominated by op count, not bytes — the coalescing
// target workload.
dnn::Model make_small_tensor_model(gpu::GpuDevice& gpu, std::size_t blocks) {
  dnn::Model m{"gpt-bits", gpu};
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto tag = std::to_string(b);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".w", .shape = {512}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".proj", .shape = {256}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".bias", .shape = {64}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".norm", .shape = {64}}, false);
  }
  m.add_tensor(dnn::TensorMeta{.name = "embed", .shape = {64, 256}}, false);
  m.randomize_weights(0xB10C5);
  return m;
}

void paint_tensor(dnn::Model& m, std::size_t i, std::byte value) {
  auto& buf = m.tensor(i).buffer();
  buf.segment().fill(buf.offset(), buf.size(), value);
}

TEST(ExtentE2ETest, CoalescedCheckpointRestoreRoundTrips) {
  Rig r{PortusDaemon::Config{.pipeline_window = 4, .chunk_bytes = 4_KiB, .stripes = 2}};
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  auto model = make_small_tensor_model(gpu, 8);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                      "portusd", /*stripes=*/2};

  bool ok = false;
  r.eng.spawn([](Rig& rig, PortusClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    EXPECT_EQ(c.stats().negotiated_max_sges, 16u)
        << "min(client NIC 30, daemon config 16)";

    co_await c.checkpoint(m, 1);
    const auto& s = rig.daemon->stats();
    EXPECT_GT(s.extents_coalesced, 0u);
    EXPECT_GT(s.sges_posted, s.wrs_posted) << "gather lists must be in play";
    EXPECT_LT(s.wrs_posted, m.layer_count())
        << "coalescing must post fewer WRs than tensors";
    EXPECT_GT(s.bytes_per_wr(), 0.0);

    // Incremental: dirty small tensors re-pull coalesced, clean ones ride
    // the pipeline as dense local copies.
    paint_tensor(m, 1, std::byte{0xB1});
    paint_tensor(m, 2, std::byte{0xB2});  // adjacent pair -> one dirty extent
    paint_tensor(m, 9, std::byte{0xB9});
    const auto golden = m.weights_crc();
    std::vector<std::uint32_t> dirty{1, 2, 9};
    co_await c.checkpoint_incremental(m, 2, std::move(dirty));

    m.mutate_weights(777);
    const auto epoch = co_await c.restore(m);
    EXPECT_EQ(epoch, 2u);
    EXPECT_EQ(m.weights_crc(), golden)
        << "multi-SGE gather/scatter must reassemble the exact bytes";
    done = true;
  }(r, client, model, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(ExtentE2ETest, ThresholdZeroMatchesCoalescedPerTensorCrcs) {
  // Two worlds, same model content: coalescing on vs off must persist the
  // exact same per-tensor payload CRCs (the layout differs — packed vs
  // 256-B-aligned — but every tensor's bytes are identical).
  const auto run_world = [](Bytes threshold) {
    Rig r{PortusDaemon::Config{.pipeline_window = 4, .chunk_bytes = 4_KiB,
                               .coalesce_threshold = threshold}};
    auto& gpu = r.cluster->node("client-volta").gpu(0);
    auto model = make_small_tensor_model(gpu, 6);
    PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
    }(client, model));
    r.eng.run();
    EXPECT_EQ(r.eng.failed_process_count(), 0);

    const auto idx = r.daemon->load_index("gpt-bits");
    const auto slot = idx.latest_done_slot();
    EXPECT_TRUE(slot.has_value());
    auto crcs = idx.payload_crcs(*slot);
    EXPECT_TRUE(crcs.has_value());
    if (threshold == 0) {
      EXPECT_EQ(r.daemon->stats().extents_coalesced, 0u)
          << "threshold 0 must run the classic single-SGE datapath";
      EXPECT_EQ(r.daemon->stats().sges_posted, r.daemon->stats().wrs_posted);
    } else {
      EXPECT_GT(r.daemon->stats().extents_coalesced, 0u);
    }
    return crcs->crcs;
  };

  const auto coalesced = run_world(4_KiB);
  const auto classic = run_world(0);
  EXPECT_EQ(coalesced, classic)
      << "per-tensor durability proof must be independent of extent planning";
}

TEST(ExtentE2ETest, FsckIsCleanOnCoalescedImages) {
  Rig r{PortusDaemon::Config{.pipeline_window = 4, .chunk_bytes = 4_KiB, .stripes = 2}};
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  auto model = make_small_tensor_model(gpu, 8);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous,
                      "portusd", /*stripes=*/2};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    for (std::uint64_t k = 1; k <= 2; ++k) {
      m.mutate_weights(k);
      co_await c.checkpoint(m, k);
    }
  }(client, model));
  r.eng.run();
  ASSERT_EQ(r.eng.failed_process_count(), 0);
  ASSERT_GT(r.daemon->stats().extents_coalesced, 0u);

  const auto report = Fsck{*r.daemon}.run(/*repair=*/false);
  EXPECT_TRUE(report.clean()) << "a coalesced image must scrub clean";
  EXPECT_EQ(report.corrupt_tensors, 0);
}

TEST(ExtentE2ETest, CoalescingCountersSurfaceThroughPortusctl) {
  Rig r{PortusDaemon::Config{.pipeline_window = 4, .chunk_bytes = 4_KiB}};
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  auto model = make_small_tensor_model(gpu, 4);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(client, model));
  r.eng.run();
  ASSERT_EQ(r.eng.failed_process_count(), 0);

  Portusctl ctl{*r.daemon};
  const auto text = ctl.render_stats();
  EXPECT_NE(text.find("rdma wrs posted"), std::string::npos);
  EXPECT_NE(text.find("extents coalesced"), std::string::npos);
  EXPECT_NE(text.find("mean sges per wr"), std::string::npos);
  EXPECT_NE(text.find("bytes per wr"), std::string::npos);
  const auto& s = r.daemon->stats();
  EXPECT_GE(s.sges_posted, s.wrs_posted);
  EXPECT_LE(s.extents_coalesced, s.wrs_posted + s.chunks_posted);
}

}  // namespace
}  // namespace portus::core
