#include "pmem/pmem_device.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <utility>

#include "common/rng.h"
#include "mem/address_space.h"
#include "pmem/devdax.h"

namespace portus::pmem {
namespace {

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  Rng{seed}.fill(v);
  return v;
}

TEST(PmemDeviceTest, WriteIsDirtyUntilPersisted) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  const auto data = random_bytes(1000, 1);
  dev.write(0, data);
  EXPECT_FALSE(dev.is_persisted(0, 1000));
  EXPECT_EQ(dev.dirty_bytes(), 1000u);
  dev.persist(0, 1000);
  EXPECT_TRUE(dev.is_persisted(0, 1000));
  EXPECT_EQ(dev.dirty_bytes(), 0u);
}

TEST(PmemDeviceTest, PartialPersistSplitsDirtyRange) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  dev.write(100, random_bytes(1000, 2));
  dev.persist(400, 200);  // persist the middle
  EXPECT_TRUE(dev.is_persisted(400, 200));
  EXPECT_FALSE(dev.is_persisted(100, 300));
  EXPECT_FALSE(dev.is_persisted(600, 500));
  EXPECT_EQ(dev.dirty_bytes(), 800u);
}

TEST(PmemDeviceTest, AdjacentWritesMerge) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  dev.write(0, random_bytes(100, 3));
  dev.write(100, random_bytes(100, 4));
  dev.write(50, random_bytes(100, 5));  // overlaps both
  EXPECT_EQ(dev.dirty_bytes(), 200u);
  dev.persist(0, 200);
  EXPECT_TRUE(dev.is_persisted(0, 200));
}

TEST(PmemDeviceTest, CrashScramblesUnpersistedData) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  const auto persisted = random_bytes(512, 6);
  const auto volatile_data = random_bytes(512, 7);
  dev.write(0, persisted);
  dev.persist(0, 512);
  dev.write(4096, volatile_data);

  dev.simulate_crash();

  EXPECT_EQ(dev.read(0, 512), persisted) << "durable data must survive";
  const auto after = dev.read(4096, 512);
  EXPECT_NE(after, volatile_data) << "unflushed data must not survive intact";
  for (auto b : after) EXPECT_EQ(b, std::byte{0xCC});
  EXPECT_EQ(dev.dirty_bytes(), 0u);
  EXPECT_EQ(dev.crash_count(), 1u);
}

TEST(PmemDeviceTest, CrashAfterFullPersistLosesNothing) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  const auto data = random_bytes(100'000, 8);
  dev.write(0, data);
  dev.persist_all();
  dev.simulate_crash();
  EXPECT_EQ(dev.read(0, data.size()), data);
}

TEST(PmemDeviceTest, PowerCutPreservesPersistedData) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  const auto durable = random_bytes(8192, 20);
  const auto volatile_data = random_bytes(8192, 21);
  dev.write(0, durable);
  dev.persist(0, durable.size());
  dev.write(64_KiB, volatile_data);

  dev.power_cut(/*seed=*/7);

  EXPECT_EQ(dev.read(0, durable.size()), durable) << "durable data must survive";
  EXPECT_EQ(dev.dirty_bytes(), 0u) << "a power cut resolves all volatile state";
  EXPECT_EQ(dev.crash_count(), 1u);
}

TEST(PmemDeviceTest, PowerCutIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    PmemDevice dev{"pmem", 16_MiB, 0x1000};
    dev.write(0, random_bytes(32_KiB, 22));
    dev.persist(0, 4096);  // first chunk durable, rest volatile
    dev.power_cut(seed);
    return dev.read(0, 32_KiB);
  };
  EXPECT_EQ(run(42), run(42)) << "same seed, same ops -> identical image";
  EXPECT_NE(run(42), run(43)) << "different seeds must tear differently";
}

TEST(PmemDeviceTest, PowerCutDestroysSomeVolatileLines) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  const auto volatile_data = random_bytes(64_KiB, 23);
  dev.write(0, volatile_data);

  dev.power_cut(/*seed=*/1);

  // Per 64-byte line: 25% survive, 25% garbage, 50% zeros. Over 1024 lines
  // the chance of everything surviving intact is (1/4)^1024 — i.e. zero.
  EXPECT_NE(dev.read(0, volatile_data.size()), volatile_data)
      << "unflushed data must not survive a power cut intact";
}

TEST(PmemDeviceTest, PowerCutTearsAtCacheLineGranularity) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  const auto volatile_data = random_bytes(64_KiB, 24);
  dev.write(0, volatile_data);
  dev.power_cut(/*seed=*/5);

  const auto after = dev.read(0, volatile_data.size());
  int survived = 0, zeroed = 0, torn = 0;
  for (std::size_t line = 0; line < after.size() / 64; ++line) {
    const std::span<const std::byte> now{after.data() + line * 64, 64};
    const std::span<const std::byte> was{volatile_data.data() + line * 64, 64};
    if (std::equal(now.begin(), now.end(), was.begin())) {
      ++survived;
    } else if (std::all_of(now.begin(), now.end(),
                           [](std::byte b) { return b == std::byte{0}; })) {
      ++zeroed;
    } else {
      ++torn;
    }
  }
  // All three outcomes must occur across 1024 lines (each is >= 25% likely).
  EXPECT_GT(survived, 0) << "ADR may drain some lines";
  EXPECT_GT(zeroed, 0) << "most lost lines read back as zeros";
  EXPECT_GT(torn, 0) << "some lines tear into garbage";
}

TEST(PmemDeviceTest, PersistObserverSeesEveryBoundary) {
  PmemDevice dev{"pmem", 16_MiB, 0x1000};
  std::vector<std::pair<std::uint64_t, bool>> boundaries;
  dev.set_persist_observer(
      [&](std::uint64_t seq, bool after) { boundaries.emplace_back(seq, after); });

  dev.write(0, random_bytes(4096, 25));
  dev.persist(0, 4096);
  dev.write(8192, random_bytes(4096, 26));
  dev.persist_all();

  ASSERT_EQ(boundaries.size(), 4u) << "before+after per fence, two fences";
  EXPECT_EQ(boundaries[0], (std::pair<std::uint64_t, bool>{1, false}));
  EXPECT_EQ(boundaries[1], (std::pair<std::uint64_t, bool>{1, true}));
  EXPECT_EQ(boundaries[2], (std::pair<std::uint64_t, bool>{2, false}));
  EXPECT_EQ(boundaries[3], (std::pair<std::uint64_t, bool>{2, true}));
  EXPECT_EQ(dev.persist_seq(), 2u);

  dev.set_persist_observer({});
  dev.write(0, random_bytes(64, 27));
  dev.persist(0, 64);
  EXPECT_EQ(boundaries.size(), 4u) << "detached observer sees nothing";
  EXPECT_EQ(dev.persist_seq(), 3u) << "the fence counter still advances";
}

TEST(PmemDeviceTest, PersistOutOfRangeThrows) {
  PmemDevice dev{"pmem", 4096, 0x1000};
  EXPECT_THROW(dev.persist(4000, 200), InvalidArgument);
}

class PmemCrashPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property: after an arbitrary interleaving of writes and persists followed
// by a crash, every range that was persisted up to its last write survives
// bit-exactly, and no range persisted-then-rewritten-but-not-repersisted
// survives silently (it must be scrambled).
TEST_P(PmemCrashPropertyTest, PersistedDataAlwaysSurvives) {
  Rng rng{GetParam()};
  PmemDevice dev{"pmem", 1_MiB, 0x1000};

  struct Region {
    Bytes offset;
    std::vector<std::byte> data;
    bool persisted;
  };
  std::vector<Region> regions;
  for (int i = 0; i < 20; ++i) {
    const Bytes offset = 4096 * static_cast<Bytes>(i) * 10;
    std::vector<std::byte> data(rng.uniform(1, 4096));
    rng.fill(data);
    dev.write(offset, data);
    const bool persisted = rng.bernoulli(0.5);
    if (persisted) dev.persist(offset, data.size());
    regions.push_back(Region{offset, std::move(data), persisted});
  }

  dev.simulate_crash();

  for (const auto& r : regions) {
    const auto now = dev.read(r.offset, r.data.size());
    if (r.persisted) {
      EXPECT_EQ(now, r.data);
    } else {
      for (auto b : now) EXPECT_EQ(b, std::byte{0xCC});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmemCrashPropertyTest, ::testing::Range<std::uint64_t>(0, 12));

TEST(DaxMappingTest, DevDaxDirectAccess) {
  mem::AddressSpace as;
  auto dev = as.create<PmemDevice>("pmem", 64_MiB);
  PmemNamespace ns{"ns0", DaxMode::kDevDax, dev};
  auto mapping = ns.map(1_MiB, 2_MiB);

  EXPECT_EQ(mapping.global_addr(), dev->base_addr() + 1_MiB);
  const auto data = random_bytes(4096, 9);
  mapping.write(100, data);
  EXPECT_EQ(mapping.read(100, 4096), data);
  EXPECT_EQ(dev->read(1_MiB + 100, 4096), data);
  mapping.persist(100, 4096);
  EXPECT_TRUE(dev->is_persisted(1_MiB + 100, 4096));
  EXPECT_THROW(mapping.read(2_MiB, 1), InvalidArgument);
}

TEST(DaxMappingTest, FsDaxRefusesDirectMapping) {
  mem::AddressSpace as;
  auto dev = as.create<PmemDevice>("pmem", 64_MiB);
  PmemNamespace ns{"ns0", DaxMode::kFsDax, dev};
  EXPECT_THROW(ns.map(0, 1_MiB), InvalidArgument);
}

TEST(PerfModelTest, FsdaxDegradesHarderThanDevdax) {
  const auto devdax = PmemPerfModel::optane_interleaved3();
  const auto fsdax = PmemPerfModel::optane_fsdax_shared();
  EXPECT_GT(fsdax.write_degradation.beta, devdax.write_degradation.beta);
  EXPECT_LT(fsdax.write_bw.bytes_per_second(), devdax.write_bw.bytes_per_second());
}

}  // namespace
}  // namespace portus::pmem
