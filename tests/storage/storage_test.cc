#include <gtest/gtest.h>

#include "common/rng.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"
#include "sim/process.h"
#include "storage/beegfs.h"
#include "storage/ext4_nvme.h"
#include "storage/serializer.h"

#include <cmath>

namespace portus::storage {
namespace {

using namespace std::chrono_literals;

CheckpointFile make_file(int tensors, std::size_t bytes_each, std::uint64_t seed) {
  CheckpointFile f;
  f.model_name = "test-model";
  Rng rng{seed};
  for (int i = 0; i < tensors; ++i) {
    SerializedTensor t;
    t.meta.name = "layer" + std::to_string(i);
    t.meta.dtype = dnn::DType::kF32;
    t.meta.shape = {static_cast<std::int64_t>(bytes_each / 4)};
    t.data.resize(bytes_each);
    rng.fill(t.data);
    f.tensors.push_back(std::move(t));
  }
  return f;
}

// --- serializer ---------------------------------------------------------------

TEST(SerializerTest, RoundTrip) {
  const auto file = make_file(5, 4096, 1);
  const auto bytes = CheckpointSerializer::serialize(file);
  const auto back = CheckpointSerializer::deserialize(bytes);
  EXPECT_EQ(back.model_name, "test-model");
  ASSERT_EQ(back.tensors.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back.tensors[i].meta.name, file.tensors[i].meta.name);
    EXPECT_EQ(back.tensors[i].meta.shape, file.tensors[i].meta.shape);
    EXPECT_EQ(back.tensors[i].data, file.tensors[i].data);
  }
}

TEST(SerializerTest, DetectsContainerCorruption) {
  const auto file = make_file(2, 1024, 2);
  auto bytes = CheckpointSerializer::serialize(file);
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW(CheckpointSerializer::deserialize(bytes), Corruption);
}

TEST(SerializerTest, DetectsTruncation) {
  const auto file = make_file(2, 1024, 3);
  auto bytes = CheckpointSerializer::serialize(file);
  bytes.resize(bytes.size() - 100);
  EXPECT_THROW(CheckpointSerializer::deserialize(bytes), Corruption);
}

TEST(SerializerTest, RejectsBadMagic) {
  std::vector<std::byte> junk(64, std::byte{0x41});
  EXPECT_THROW(CheckpointSerializer::deserialize(junk), Corruption);
}

TEST(SerializerTest, ContainerSizeModelMatchesReality) {
  sim::Engine eng;
  mem::AddressSpace as;
  gpu::GpuDevice gpu{eng, as, "gpu0", gpu::GpuKind::kV100};
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(gpu, "alexnet", opt);

  CheckpointFile file;
  file.model_name = model.name();
  for (auto& t : model.tensors()) {
    SerializedTensor st;
    st.meta = t.meta();
    st.data = t.buffer().download();
    file.tensors.push_back(std::move(st));
  }
  EXPECT_EQ(CheckpointSerializer::serialize(file).size(),
            CheckpointSerializer::container_size(model));
}

TEST(SerializerTest, MismatchedPayloadRejectedAtSerialize) {
  auto file = make_file(1, 1024, 4);
  file.tensors[0].data.resize(1000);  // no longer matches the shape
  EXPECT_THROW(CheckpointSerializer::serialize(file), InvalidArgument);
}

// --- ext4-NVMe ----------------------------------------------------------------

struct Ext4Fixture {
  sim::Engine eng;
  Ext4NvmeFs fs{eng, "ext4-nvme"};
};

TEST(Ext4NvmeTest, WriteReadRoundTrip) {
  Ext4Fixture f;
  std::vector<std::byte> data(3_MiB);
  Rng{5}.fill(data);
  std::vector<std::byte> got;
  f.eng.spawn([](Ext4Fixture& fx, std::vector<std::byte>& d,
                 std::vector<std::byte>& out) -> sim::Process {
    co_await fx.fs.write_file("ckpt.bin", d.size(), &d);
    out = co_await fx.fs.read_file("ckpt.bin");
  }(f, data, got));
  f.eng.run();
  EXPECT_EQ(got, data);
  EXPECT_TRUE(f.fs.exists("ckpt.bin"));
  EXPECT_EQ(f.fs.file_size("ckpt.bin"), 3_MiB);
}

TEST(Ext4NvmeTest, WriteTimeMatchesCostModel) {
  Ext4Fixture f;
  Time done{};
  f.eng.spawn([](Ext4Fixture& fx, Time& t) -> sim::Process {
    co_await fx.fs.write_file("big.bin", 270_MB, nullptr);  // phantom
    t = fx.eng.now();
  }(f, done));
  f.eng.run();
  const auto& spec = f.fs.spec();
  const double chunks = std::ceil(270e6 / static_cast<double>(spec.chunk));
  const double expected = 270e6 / spec.write_bw.bytes_per_second() +
                          chunks * to_seconds(spec.kernel_cost_per_chunk) +
                          to_seconds(spec.open_cost) + to_seconds(spec.fsync_cost);
  EXPECT_NEAR(to_seconds(done), expected, 0.01);
}

TEST(Ext4NvmeTest, GdsReadIsFasterThanBuffered) {
  Ext4Fixture f;
  Duration buffered{}, gds{};
  f.eng.spawn([](Ext4Fixture& fx, Duration& b, Duration& g) -> sim::Process {
    co_await fx.fs.write_file("x.bin", 100_MB, nullptr);
    Time t0 = fx.eng.now();
    co_await fx.fs.read_file_time_only("x.bin", false);
    b = fx.eng.now() - t0;
    t0 = fx.eng.now();
    co_await fx.fs.read_file_time_only("x.bin", true);
    g = fx.eng.now() - t0;
  }(f, buffered, gds));
  f.eng.run();
  EXPECT_LT(gds, buffered);
}

TEST(Ext4NvmeTest, MissingFileThrows) {
  Ext4Fixture f;
  bool threw = false;
  f.eng.spawn([](Ext4Fixture& fx, bool& t) -> sim::Process {
    try {
      co_await fx.fs.read_file("nope.bin");
    } catch (const NotFound&) {
      t = true;
    }
  }(f, threw));
  f.eng.run();
  EXPECT_TRUE(threw);
}

TEST(Ext4NvmeTest, RemoveDeletesFile) {
  Ext4Fixture f;
  f.eng.spawn([](Ext4Fixture& fx) -> sim::Process {
    co_await fx.fs.write_file("x.bin", 1024, nullptr);
    co_await fx.fs.remove("x.bin");
  }(f));
  f.eng.run();
  EXPECT_FALSE(f.fs.exists("x.bin"));
}

// --- BeeGFS -------------------------------------------------------------------

struct BeeGfsFixture {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  BeeGfsServer server{cluster->node("server")};
  BeeGfsMount mount{*cluster, cluster->node("client-volta"), server, "mnt0"};
};

TEST(BeeGfsTest, WriteReadRoundTripOverRpc) {
  BeeGfsFixture f;
  std::vector<std::byte> data(2500_KiB);  // crosses several 1 MiB chunks
  Rng{6}.fill(data);
  std::vector<std::byte> got;
  f.eng.spawn([](BeeGfsFixture& fx, std::vector<std::byte>& d,
                 std::vector<std::byte>& out) -> sim::Process {
    co_await fx.mount.write_file("/ckpt/model.bin", d.size(), &d);
    out = co_await fx.mount.read_file("/ckpt/model.bin");
  }(f, data, got));
  f.eng.run();
  EXPECT_EQ(got, data);
  EXPECT_EQ(f.eng.failed_process_count(), 0);
}

TEST(BeeGfsTest, SingleStreamThroughputNearPaperCalibration) {
  BeeGfsFixture f;
  Time done{};
  f.eng.spawn([](BeeGfsFixture& fx, Time& t) -> sim::Process {
    co_await fx.mount.write_file("/big.bin", 1_GB, nullptr);
    t = fx.eng.now();
  }(f, done));
  f.eng.run();
  const double gbps = 1.0 / to_seconds(done);
  // Calibrated to ~1.5-1.6 GB/s effective single-stream write (RPC transport
  // + handler + DAX; Table I's RDMA+DAX = 42.8% of a ~2 s BERT checkpoint).
  EXPECT_GT(gbps, 1.2);
  EXPECT_LT(gbps, 2.2);
}

TEST(BeeGfsTest, MetadataCostDominatesSmallFiles) {
  BeeGfsFixture f;
  Duration small_time{};
  f.eng.spawn([](BeeGfsFixture& fx, Duration& t) -> sim::Process {
    const Time t0 = fx.eng.now();
    co_await fx.mount.write_file("/tiny.bin", 4_KiB, nullptr);
    t = fx.eng.now() - t0;
  }(f, small_time));
  f.eng.run();
  // Path resolution + commit are milliseconds; the 4 KiB itself is microseconds.
  EXPECT_GT(small_time, 10ms);
}

TEST(BeeGfsTest, ConcurrentMountsDegradeAggregateThroughput) {
  // Aggregate write bandwidth with 8 concurrent ranks must be well below
  // 8x the single-stream value (Optane fsdax degradation, Fig. 14's cause).
  sim::Engine eng;
  auto cluster = net::Cluster::paper_testbed(eng);
  BeeGfsServer server{cluster->node("server")};

  std::vector<std::unique_ptr<BeeGfsMount>> mounts;
  for (int i = 0; i < 8; ++i) {
    mounts.push_back(std::make_unique<BeeGfsMount>(
        *cluster, cluster->node("client-ampere"), server, "mnt" + std::to_string(i)));
  }
  const Bytes per_rank = 1_GB;
  for (int i = 0; i < 8; ++i) {
    eng.spawn([](BeeGfsMount& m, int rank, Bytes n) -> sim::Process {
      co_await m.write_file("/shard" + std::to_string(rank), n, nullptr);
    }(*mounts[static_cast<std::size_t>(i)], i, per_rank));
  }
  const Time end = eng.run();
  const double aggregate_gbps = 8.0 / to_seconds(end);
  EXPECT_LT(aggregate_gbps, 2.0) << "fsdax write concurrency must collapse throughput";
  EXPECT_GT(aggregate_gbps, 0.4);
}

TEST(BeeGfsTest, RequiresFsdaxNamespace) {
  sim::Engine eng;
  auto cluster = net::Cluster::paper_testbed(eng);
  EXPECT_THROW(BeeGfsServer{cluster->node("client-volta")}, InvalidArgument);
}

}  // namespace
}  // namespace portus::storage
