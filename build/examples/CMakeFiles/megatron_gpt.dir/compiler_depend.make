# Empty compiler generated dependencies file for megatron_gpt.
# This may be replaced when dependencies are built.
