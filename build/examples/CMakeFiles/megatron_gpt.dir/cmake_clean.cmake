file(REMOVE_RECURSE
  "CMakeFiles/megatron_gpt.dir/megatron_gpt.cpp.o"
  "CMakeFiles/megatron_gpt.dir/megatron_gpt.cpp.o.d"
  "megatron_gpt"
  "megatron_gpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megatron_gpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
