file(REMOVE_RECURSE
  "CMakeFiles/test_pmem.dir/pmem/pmem_device_test.cc.o"
  "CMakeFiles/test_pmem.dir/pmem/pmem_device_test.cc.o.d"
  "test_pmem"
  "test_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
