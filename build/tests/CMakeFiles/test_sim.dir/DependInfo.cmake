
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/bandwidth_channel_test.cc" "tests/CMakeFiles/test_sim.dir/sim/bandwidth_channel_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/bandwidth_channel_test.cc.o.d"
  "/root/repo/tests/sim/engine_test.cc" "tests/CMakeFiles/test_sim.dir/sim/engine_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/engine_test.cc.o.d"
  "/root/repo/tests/sim/sync_test.cc" "tests/CMakeFiles/test_sim.dir/sim/sync_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/sync_test.cc.o.d"
  "/root/repo/tests/sim/task_test.cc" "tests/CMakeFiles/test_sim.dir/sim/task_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/task_test.cc.o.d"
  "/root/repo/tests/sim/trace_test.cc" "tests/CMakeFiles/test_sim.dir/sim/trace_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
