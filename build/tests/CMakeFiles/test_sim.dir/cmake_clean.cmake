file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/bandwidth_channel_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/bandwidth_channel_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/engine_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/engine_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/sync_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/sync_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/task_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/task_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/trace_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/trace_test.cc.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
