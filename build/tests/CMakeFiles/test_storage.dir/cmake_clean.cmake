file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/storage_test.cc.o"
  "CMakeFiles/test_storage.dir/storage/storage_test.cc.o.d"
  "test_storage"
  "test_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
