
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/net_test.cc" "tests/CMakeFiles/test_net.dir/net/net_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
