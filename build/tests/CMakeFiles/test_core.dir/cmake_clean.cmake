file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/core_integration_test.cc.o"
  "CMakeFiles/test_core.dir/core/core_integration_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/core_unit_test.cc.o"
  "CMakeFiles/test_core.dir/core/core_unit_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/distributed_test.cc.o"
  "CMakeFiles/test_core.dir/core/distributed_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/incremental_test.cc.o"
  "CMakeFiles/test_core.dir/core/incremental_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/lifecycle_test.cc.o"
  "CMakeFiles/test_core.dir/core/lifecycle_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/model_based_test.cc.o"
  "CMakeFiles/test_core.dir/core/model_based_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/robustness_test.cc.o"
  "CMakeFiles/test_core.dir/core/robustness_test.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
