
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/core_integration_test.cc" "tests/CMakeFiles/test_core.dir/core/core_integration_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/core_integration_test.cc.o.d"
  "/root/repo/tests/core/core_unit_test.cc" "tests/CMakeFiles/test_core.dir/core/core_unit_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/core_unit_test.cc.o.d"
  "/root/repo/tests/core/distributed_test.cc" "tests/CMakeFiles/test_core.dir/core/distributed_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/distributed_test.cc.o.d"
  "/root/repo/tests/core/incremental_test.cc" "tests/CMakeFiles/test_core.dir/core/incremental_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/incremental_test.cc.o.d"
  "/root/repo/tests/core/lifecycle_test.cc" "tests/CMakeFiles/test_core.dir/core/lifecycle_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lifecycle_test.cc.o.d"
  "/root/repo/tests/core/model_based_test.cc" "tests/CMakeFiles/test_core.dir/core/model_based_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_based_test.cc.o.d"
  "/root/repo/tests/core/robustness_test.cc" "tests/CMakeFiles/test_core.dir/core/robustness_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/robustness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
