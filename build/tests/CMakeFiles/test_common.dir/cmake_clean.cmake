file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/binary_io_test.cc.o"
  "CMakeFiles/test_common.dir/common/binary_io_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/crc32_test.cc.o"
  "CMakeFiles/test_common.dir/common/crc32_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/strformat_test.cc.o"
  "CMakeFiles/test_common.dir/common/strformat_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/units_test.cc.o"
  "CMakeFiles/test_common.dir/common/units_test.cc.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
