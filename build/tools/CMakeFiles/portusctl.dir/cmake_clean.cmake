file(REMOVE_RECURSE
  "CMakeFiles/portusctl.dir/portusctl_main.cc.o"
  "CMakeFiles/portusctl.dir/portusctl_main.cc.o.d"
  "portusctl"
  "portusctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portusctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
