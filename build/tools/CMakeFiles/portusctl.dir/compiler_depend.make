# Empty compiler generated dependencies file for portusctl.
# This may be replaced when dependencies are built.
