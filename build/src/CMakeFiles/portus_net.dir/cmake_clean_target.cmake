file(REMOVE_RECURSE
  "libportus_net.a"
)
