file(REMOVE_RECURSE
  "CMakeFiles/portus_net.dir/net/cluster.cc.o"
  "CMakeFiles/portus_net.dir/net/cluster.cc.o.d"
  "CMakeFiles/portus_net.dir/net/node.cc.o"
  "CMakeFiles/portus_net.dir/net/node.cc.o.d"
  "CMakeFiles/portus_net.dir/net/tcp.cc.o"
  "CMakeFiles/portus_net.dir/net/tcp.cc.o.d"
  "libportus_net.a"
  "libportus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
