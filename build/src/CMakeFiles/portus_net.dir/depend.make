# Empty dependencies file for portus_net.
# This may be replaced when dependencies are built.
