
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/copy_engine.cc" "src/CMakeFiles/portus_gpu.dir/gpu/copy_engine.cc.o" "gcc" "src/CMakeFiles/portus_gpu.dir/gpu/copy_engine.cc.o.d"
  "/root/repo/src/gpu/gpu_device.cc" "src/CMakeFiles/portus_gpu.dir/gpu/gpu_device.cc.o" "gcc" "src/CMakeFiles/portus_gpu.dir/gpu/gpu_device.cc.o.d"
  "/root/repo/src/gpu/peer_mem.cc" "src/CMakeFiles/portus_gpu.dir/gpu/peer_mem.cc.o" "gcc" "src/CMakeFiles/portus_gpu.dir/gpu/peer_mem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
