# Empty compiler generated dependencies file for portus_gpu.
# This may be replaced when dependencies are built.
