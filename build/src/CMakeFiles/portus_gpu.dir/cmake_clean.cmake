file(REMOVE_RECURSE
  "CMakeFiles/portus_gpu.dir/gpu/copy_engine.cc.o"
  "CMakeFiles/portus_gpu.dir/gpu/copy_engine.cc.o.d"
  "CMakeFiles/portus_gpu.dir/gpu/gpu_device.cc.o"
  "CMakeFiles/portus_gpu.dir/gpu/gpu_device.cc.o.d"
  "CMakeFiles/portus_gpu.dir/gpu/peer_mem.cc.o"
  "CMakeFiles/portus_gpu.dir/gpu/peer_mem.cc.o.d"
  "libportus_gpu.a"
  "libportus_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
