file(REMOVE_RECURSE
  "libportus_gpu.a"
)
