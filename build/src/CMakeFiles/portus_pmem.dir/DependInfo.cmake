
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/devdax.cc" "src/CMakeFiles/portus_pmem.dir/pmem/devdax.cc.o" "gcc" "src/CMakeFiles/portus_pmem.dir/pmem/devdax.cc.o.d"
  "/root/repo/src/pmem/perf_model.cc" "src/CMakeFiles/portus_pmem.dir/pmem/perf_model.cc.o" "gcc" "src/CMakeFiles/portus_pmem.dir/pmem/perf_model.cc.o.d"
  "/root/repo/src/pmem/pmem_device.cc" "src/CMakeFiles/portus_pmem.dir/pmem/pmem_device.cc.o" "gcc" "src/CMakeFiles/portus_pmem.dir/pmem/pmem_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
