file(REMOVE_RECURSE
  "libportus_pmem.a"
)
