file(REMOVE_RECURSE
  "CMakeFiles/portus_pmem.dir/pmem/devdax.cc.o"
  "CMakeFiles/portus_pmem.dir/pmem/devdax.cc.o.d"
  "CMakeFiles/portus_pmem.dir/pmem/perf_model.cc.o"
  "CMakeFiles/portus_pmem.dir/pmem/perf_model.cc.o.d"
  "CMakeFiles/portus_pmem.dir/pmem/pmem_device.cc.o"
  "CMakeFiles/portus_pmem.dir/pmem/pmem_device.cc.o.d"
  "libportus_pmem.a"
  "libportus_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
