# Empty dependencies file for portus_pmem.
# This may be replaced when dependencies are built.
