file(REMOVE_RECURSE
  "libportus_baselines.a"
)
