# Empty dependencies file for portus_baselines.
# This may be replaced when dependencies are built.
