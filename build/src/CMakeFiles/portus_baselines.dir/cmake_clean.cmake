file(REMOVE_RECURSE
  "CMakeFiles/portus_baselines.dir/baselines/checkfreq.cc.o"
  "CMakeFiles/portus_baselines.dir/baselines/checkfreq.cc.o.d"
  "CMakeFiles/portus_baselines.dir/baselines/torch_save.cc.o"
  "CMakeFiles/portus_baselines.dir/baselines/torch_save.cc.o.d"
  "libportus_baselines.a"
  "libportus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
