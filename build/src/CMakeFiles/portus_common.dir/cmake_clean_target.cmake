file(REMOVE_RECURSE
  "libportus_common.a"
)
