
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/binary_io.cc" "src/CMakeFiles/portus_common.dir/common/binary_io.cc.o" "gcc" "src/CMakeFiles/portus_common.dir/common/binary_io.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/portus_common.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/portus_common.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/hexdump.cc" "src/CMakeFiles/portus_common.dir/common/hexdump.cc.o" "gcc" "src/CMakeFiles/portus_common.dir/common/hexdump.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/portus_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/portus_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/units.cc" "src/CMakeFiles/portus_common.dir/common/units.cc.o" "gcc" "src/CMakeFiles/portus_common.dir/common/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
