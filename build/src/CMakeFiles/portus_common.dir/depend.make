# Empty dependencies file for portus_common.
# This may be replaced when dependencies are built.
