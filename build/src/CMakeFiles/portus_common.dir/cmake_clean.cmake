file(REMOVE_RECURSE
  "CMakeFiles/portus_common.dir/common/binary_io.cc.o"
  "CMakeFiles/portus_common.dir/common/binary_io.cc.o.d"
  "CMakeFiles/portus_common.dir/common/crc32.cc.o"
  "CMakeFiles/portus_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/portus_common.dir/common/hexdump.cc.o"
  "CMakeFiles/portus_common.dir/common/hexdump.cc.o.d"
  "CMakeFiles/portus_common.dir/common/logging.cc.o"
  "CMakeFiles/portus_common.dir/common/logging.cc.o.d"
  "CMakeFiles/portus_common.dir/common/units.cc.o"
  "CMakeFiles/portus_common.dir/common/units.cc.o.d"
  "libportus_common.a"
  "libportus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
