
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/dtype.cc" "src/CMakeFiles/portus_dnn.dir/dnn/dtype.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/dtype.cc.o.d"
  "/root/repo/src/dnn/model.cc" "src/CMakeFiles/portus_dnn.dir/dnn/model.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/model.cc.o.d"
  "/root/repo/src/dnn/model_zoo.cc" "src/CMakeFiles/portus_dnn.dir/dnn/model_zoo.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/model_zoo.cc.o.d"
  "/root/repo/src/dnn/optimizer.cc" "src/CMakeFiles/portus_dnn.dir/dnn/optimizer.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/optimizer.cc.o.d"
  "/root/repo/src/dnn/parallel.cc" "src/CMakeFiles/portus_dnn.dir/dnn/parallel.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/parallel.cc.o.d"
  "/root/repo/src/dnn/tensor.cc" "src/CMakeFiles/portus_dnn.dir/dnn/tensor.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/tensor.cc.o.d"
  "/root/repo/src/dnn/training.cc" "src/CMakeFiles/portus_dnn.dir/dnn/training.cc.o" "gcc" "src/CMakeFiles/portus_dnn.dir/dnn/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
