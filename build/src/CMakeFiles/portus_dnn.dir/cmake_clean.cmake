file(REMOVE_RECURSE
  "CMakeFiles/portus_dnn.dir/dnn/dtype.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/dtype.cc.o.d"
  "CMakeFiles/portus_dnn.dir/dnn/model.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/model.cc.o.d"
  "CMakeFiles/portus_dnn.dir/dnn/model_zoo.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/model_zoo.cc.o.d"
  "CMakeFiles/portus_dnn.dir/dnn/optimizer.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/optimizer.cc.o.d"
  "CMakeFiles/portus_dnn.dir/dnn/parallel.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/parallel.cc.o.d"
  "CMakeFiles/portus_dnn.dir/dnn/tensor.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/tensor.cc.o.d"
  "CMakeFiles/portus_dnn.dir/dnn/training.cc.o"
  "CMakeFiles/portus_dnn.dir/dnn/training.cc.o.d"
  "libportus_dnn.a"
  "libportus_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
