# Empty dependencies file for portus_dnn.
# This may be replaced when dependencies are built.
