file(REMOVE_RECURSE
  "libportus_dnn.a"
)
