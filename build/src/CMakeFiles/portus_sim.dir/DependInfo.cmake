
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bandwidth_channel.cc" "src/CMakeFiles/portus_sim.dir/sim/bandwidth_channel.cc.o" "gcc" "src/CMakeFiles/portus_sim.dir/sim/bandwidth_channel.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/portus_sim.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/portus_sim.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/CMakeFiles/portus_sim.dir/sim/process.cc.o" "gcc" "src/CMakeFiles/portus_sim.dir/sim/process.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/portus_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/portus_sim.dir/sim/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
