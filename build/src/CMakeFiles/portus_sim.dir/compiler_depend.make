# Empty compiler generated dependencies file for portus_sim.
# This may be replaced when dependencies are built.
