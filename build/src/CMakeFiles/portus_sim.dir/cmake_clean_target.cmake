file(REMOVE_RECURSE
  "libportus_sim.a"
)
