# Empty dependencies file for portus_sim.
# This may be replaced when dependencies are built.
