file(REMOVE_RECURSE
  "CMakeFiles/portus_sim.dir/sim/bandwidth_channel.cc.o"
  "CMakeFiles/portus_sim.dir/sim/bandwidth_channel.cc.o.d"
  "CMakeFiles/portus_sim.dir/sim/engine.cc.o"
  "CMakeFiles/portus_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/portus_sim.dir/sim/process.cc.o"
  "CMakeFiles/portus_sim.dir/sim/process.cc.o.d"
  "CMakeFiles/portus_sim.dir/sim/trace.cc.o"
  "CMakeFiles/portus_sim.dir/sim/trace.cc.o.d"
  "libportus_sim.a"
  "libportus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
