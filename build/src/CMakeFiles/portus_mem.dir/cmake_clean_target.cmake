file(REMOVE_RECURSE
  "libportus_mem.a"
)
