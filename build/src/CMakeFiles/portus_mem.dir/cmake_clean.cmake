file(REMOVE_RECURSE
  "CMakeFiles/portus_mem.dir/mem/address_space.cc.o"
  "CMakeFiles/portus_mem.dir/mem/address_space.cc.o.d"
  "CMakeFiles/portus_mem.dir/mem/segment.cc.o"
  "CMakeFiles/portus_mem.dir/mem/segment.cc.o.d"
  "libportus_mem.a"
  "libportus_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
