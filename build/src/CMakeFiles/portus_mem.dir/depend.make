# Empty dependencies file for portus_mem.
# This may be replaced when dependencies are built.
