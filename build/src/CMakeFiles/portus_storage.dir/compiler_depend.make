# Empty compiler generated dependencies file for portus_storage.
# This may be replaced when dependencies are built.
