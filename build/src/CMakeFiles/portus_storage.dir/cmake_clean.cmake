file(REMOVE_RECURSE
  "CMakeFiles/portus_storage.dir/storage/beegfs.cc.o"
  "CMakeFiles/portus_storage.dir/storage/beegfs.cc.o.d"
  "CMakeFiles/portus_storage.dir/storage/ext4_nvme.cc.o"
  "CMakeFiles/portus_storage.dir/storage/ext4_nvme.cc.o.d"
  "CMakeFiles/portus_storage.dir/storage/filesystem.cc.o"
  "CMakeFiles/portus_storage.dir/storage/filesystem.cc.o.d"
  "CMakeFiles/portus_storage.dir/storage/serializer.cc.o"
  "CMakeFiles/portus_storage.dir/storage/serializer.cc.o.d"
  "libportus_storage.a"
  "libportus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
