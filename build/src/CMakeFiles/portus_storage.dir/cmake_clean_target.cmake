file(REMOVE_RECURSE
  "libportus_storage.a"
)
