# Empty compiler generated dependencies file for portus_rdma.
# This may be replaced when dependencies are built.
