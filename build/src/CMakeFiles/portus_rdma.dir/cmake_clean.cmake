file(REMOVE_RECURSE
  "CMakeFiles/portus_rdma.dir/rdma/completion_queue.cc.o"
  "CMakeFiles/portus_rdma.dir/rdma/completion_queue.cc.o.d"
  "CMakeFiles/portus_rdma.dir/rdma/fabric.cc.o"
  "CMakeFiles/portus_rdma.dir/rdma/fabric.cc.o.d"
  "CMakeFiles/portus_rdma.dir/rdma/memory_region.cc.o"
  "CMakeFiles/portus_rdma.dir/rdma/memory_region.cc.o.d"
  "CMakeFiles/portus_rdma.dir/rdma/queue_pair.cc.o"
  "CMakeFiles/portus_rdma.dir/rdma/queue_pair.cc.o.d"
  "CMakeFiles/portus_rdma.dir/rdma/rpc.cc.o"
  "CMakeFiles/portus_rdma.dir/rdma/rpc.cc.o.d"
  "libportus_rdma.a"
  "libportus_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
