file(REMOVE_RECURSE
  "libportus_rdma.a"
)
