
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/completion_queue.cc" "src/CMakeFiles/portus_rdma.dir/rdma/completion_queue.cc.o" "gcc" "src/CMakeFiles/portus_rdma.dir/rdma/completion_queue.cc.o.d"
  "/root/repo/src/rdma/fabric.cc" "src/CMakeFiles/portus_rdma.dir/rdma/fabric.cc.o" "gcc" "src/CMakeFiles/portus_rdma.dir/rdma/fabric.cc.o.d"
  "/root/repo/src/rdma/memory_region.cc" "src/CMakeFiles/portus_rdma.dir/rdma/memory_region.cc.o" "gcc" "src/CMakeFiles/portus_rdma.dir/rdma/memory_region.cc.o.d"
  "/root/repo/src/rdma/queue_pair.cc" "src/CMakeFiles/portus_rdma.dir/rdma/queue_pair.cc.o" "gcc" "src/CMakeFiles/portus_rdma.dir/rdma/queue_pair.cc.o.d"
  "/root/repo/src/rdma/rpc.cc" "src/CMakeFiles/portus_rdma.dir/rdma/rpc.cc.o" "gcc" "src/CMakeFiles/portus_rdma.dir/rdma/rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
