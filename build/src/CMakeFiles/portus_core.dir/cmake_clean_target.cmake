file(REMOVE_RECURSE
  "libportus_core.a"
)
