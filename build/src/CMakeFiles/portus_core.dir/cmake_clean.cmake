file(REMOVE_RECURSE
  "CMakeFiles/portus_core.dir/core/async_coordinator.cc.o"
  "CMakeFiles/portus_core.dir/core/async_coordinator.cc.o.d"
  "CMakeFiles/portus_core.dir/core/client.cc.o"
  "CMakeFiles/portus_core.dir/core/client.cc.o.d"
  "CMakeFiles/portus_core.dir/core/daemon/allocator.cc.o"
  "CMakeFiles/portus_core.dir/core/daemon/allocator.cc.o.d"
  "CMakeFiles/portus_core.dir/core/daemon/daemon.cc.o"
  "CMakeFiles/portus_core.dir/core/daemon/daemon.cc.o.d"
  "CMakeFiles/portus_core.dir/core/daemon/mindex.cc.o"
  "CMakeFiles/portus_core.dir/core/daemon/mindex.cc.o.d"
  "CMakeFiles/portus_core.dir/core/daemon/model_table.cc.o"
  "CMakeFiles/portus_core.dir/core/daemon/model_table.cc.o.d"
  "CMakeFiles/portus_core.dir/core/daemon/repacker.cc.o"
  "CMakeFiles/portus_core.dir/core/daemon/repacker.cc.o.d"
  "CMakeFiles/portus_core.dir/core/daemon/slots.cc.o"
  "CMakeFiles/portus_core.dir/core/daemon/slots.cc.o.d"
  "CMakeFiles/portus_core.dir/core/portusctl.cc.o"
  "CMakeFiles/portus_core.dir/core/portusctl.cc.o.d"
  "CMakeFiles/portus_core.dir/core/protocol.cc.o"
  "CMakeFiles/portus_core.dir/core/protocol.cc.o.d"
  "libportus_core.a"
  "libportus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
