# Empty dependencies file for portus_core.
# This may be replaced when dependencies are built.
