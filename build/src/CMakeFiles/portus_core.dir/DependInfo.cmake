
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_coordinator.cc" "src/CMakeFiles/portus_core.dir/core/async_coordinator.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/async_coordinator.cc.o.d"
  "/root/repo/src/core/client.cc" "src/CMakeFiles/portus_core.dir/core/client.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/client.cc.o.d"
  "/root/repo/src/core/daemon/allocator.cc" "src/CMakeFiles/portus_core.dir/core/daemon/allocator.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/daemon/allocator.cc.o.d"
  "/root/repo/src/core/daemon/daemon.cc" "src/CMakeFiles/portus_core.dir/core/daemon/daemon.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/daemon/daemon.cc.o.d"
  "/root/repo/src/core/daemon/mindex.cc" "src/CMakeFiles/portus_core.dir/core/daemon/mindex.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/daemon/mindex.cc.o.d"
  "/root/repo/src/core/daemon/model_table.cc" "src/CMakeFiles/portus_core.dir/core/daemon/model_table.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/daemon/model_table.cc.o.d"
  "/root/repo/src/core/daemon/repacker.cc" "src/CMakeFiles/portus_core.dir/core/daemon/repacker.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/daemon/repacker.cc.o.d"
  "/root/repo/src/core/daemon/slots.cc" "src/CMakeFiles/portus_core.dir/core/daemon/slots.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/daemon/slots.cc.o.d"
  "/root/repo/src/core/portusctl.cc" "src/CMakeFiles/portus_core.dir/core/portusctl.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/portusctl.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/CMakeFiles/portus_core.dir/core/protocol.cc.o" "gcc" "src/CMakeFiles/portus_core.dir/core/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/portus_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
