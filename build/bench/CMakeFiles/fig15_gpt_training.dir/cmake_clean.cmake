file(REMOVE_RECURSE
  "CMakeFiles/fig15_gpt_training.dir/fig15_gpt_training.cc.o"
  "CMakeFiles/fig15_gpt_training.dir/fig15_gpt_training.cc.o.d"
  "fig15_gpt_training"
  "fig15_gpt_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gpt_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
