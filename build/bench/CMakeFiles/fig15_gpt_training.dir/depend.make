# Empty dependencies file for fig15_gpt_training.
# This may be replaced when dependencies are built.
