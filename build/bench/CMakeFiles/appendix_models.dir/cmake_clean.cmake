file(REMOVE_RECURSE
  "CMakeFiles/appendix_models.dir/appendix_models.cc.o"
  "CMakeFiles/appendix_models.dir/appendix_models.cc.o.d"
  "appendix_models"
  "appendix_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
