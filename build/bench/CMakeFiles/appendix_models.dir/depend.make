# Empty dependencies file for appendix_models.
# This may be replaced when dependencies are built.
