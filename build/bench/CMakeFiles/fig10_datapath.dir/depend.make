# Empty dependencies file for fig10_datapath.
# This may be replaced when dependencies are built.
