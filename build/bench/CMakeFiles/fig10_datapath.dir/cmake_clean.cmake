file(REMOVE_RECURSE
  "CMakeFiles/fig10_datapath.dir/fig10_datapath.cc.o"
  "CMakeFiles/fig10_datapath.dir/fig10_datapath.cc.o.d"
  "fig10_datapath"
  "fig10_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
