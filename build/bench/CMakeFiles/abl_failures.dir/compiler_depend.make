# Empty compiler generated dependencies file for abl_failures.
# This may be replaced when dependencies are built.
