file(REMOVE_RECURSE
  "CMakeFiles/abl_failures.dir/abl_failures.cc.o"
  "CMakeFiles/abl_failures.dir/abl_failures.cc.o.d"
  "abl_failures"
  "abl_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
