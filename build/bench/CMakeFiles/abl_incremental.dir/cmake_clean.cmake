file(REMOVE_RECURSE
  "CMakeFiles/abl_incremental.dir/abl_incremental.cc.o"
  "CMakeFiles/abl_incremental.dir/abl_incremental.cc.o.d"
  "abl_incremental"
  "abl_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
