# Empty dependencies file for abl_incremental.
# This may be replaced when dependencies are built.
