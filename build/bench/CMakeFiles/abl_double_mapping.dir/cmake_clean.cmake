file(REMOVE_RECURSE
  "CMakeFiles/abl_double_mapping.dir/abl_double_mapping.cc.o"
  "CMakeFiles/abl_double_mapping.dir/abl_double_mapping.cc.o.d"
  "abl_double_mapping"
  "abl_double_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_double_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
