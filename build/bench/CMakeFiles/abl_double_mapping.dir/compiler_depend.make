# Empty compiler generated dependencies file for abl_double_mapping.
# This may be replaced when dependencies are built.
