file(REMOVE_RECURSE
  "CMakeFiles/abl_onesided.dir/abl_onesided.cc.o"
  "CMakeFiles/abl_onesided.dir/abl_onesided.cc.o.d"
  "abl_onesided"
  "abl_onesided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_onesided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
