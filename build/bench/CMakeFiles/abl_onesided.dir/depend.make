# Empty dependencies file for abl_onesided.
# This may be replaced when dependencies are built.
