file(REMOVE_RECURSE
  "CMakeFiles/tab02_models.dir/tab02_models.cc.o"
  "CMakeFiles/tab02_models.dir/tab02_models.cc.o.d"
  "tab02_models"
  "tab02_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
