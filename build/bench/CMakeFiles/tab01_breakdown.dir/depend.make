# Empty dependencies file for tab01_breakdown.
# This may be replaced when dependencies are built.
