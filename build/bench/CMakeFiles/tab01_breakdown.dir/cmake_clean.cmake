file(REMOVE_RECURSE
  "CMakeFiles/tab01_breakdown.dir/tab01_breakdown.cc.o"
  "CMakeFiles/tab01_breakdown.dir/tab01_breakdown.cc.o.d"
  "tab01_breakdown"
  "tab01_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
