# Empty compiler generated dependencies file for fig16_gpu_util.
# This may be replaced when dependencies are built.
