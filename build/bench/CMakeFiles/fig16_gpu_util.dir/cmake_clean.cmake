file(REMOVE_RECURSE
  "CMakeFiles/fig16_gpu_util.dir/fig16_gpu_util.cc.o"
  "CMakeFiles/fig16_gpu_util.dir/fig16_gpu_util.cc.o.d"
  "fig16_gpu_util"
  "fig16_gpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_gpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
