file(REMOVE_RECURSE
  "CMakeFiles/fig02_overhead.dir/fig02_overhead.cc.o"
  "CMakeFiles/fig02_overhead.dir/fig02_overhead.cc.o.d"
  "fig02_overhead"
  "fig02_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
