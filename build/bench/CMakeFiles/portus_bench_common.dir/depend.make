# Empty dependencies file for portus_bench_common.
# This may be replaced when dependencies are built.
