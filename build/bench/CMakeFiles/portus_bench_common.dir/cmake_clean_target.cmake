file(REMOVE_RECURSE
  "libportus_bench_common.a"
)
