file(REMOVE_RECURSE
  "CMakeFiles/portus_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/portus_bench_common.dir/bench_common.cc.o.d"
  "libportus_bench_common.a"
  "libportus_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portus_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
