file(REMOVE_RECURSE
  "CMakeFiles/fig12_restore.dir/fig12_restore.cc.o"
  "CMakeFiles/fig12_restore.dir/fig12_restore.cc.o.d"
  "fig12_restore"
  "fig12_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
