
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_restore.cc" "bench/CMakeFiles/fig12_restore.dir/fig12_restore.cc.o" "gcc" "bench/CMakeFiles/fig12_restore.dir/fig12_restore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/portus_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/portus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
