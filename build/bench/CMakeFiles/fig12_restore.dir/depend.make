# Empty dependencies file for fig12_restore.
# This may be replaced when dependencies are built.
