# Empty dependencies file for fig14_gpt_dump.
# This may be replaced when dependencies are built.
