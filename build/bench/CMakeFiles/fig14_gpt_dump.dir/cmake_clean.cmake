file(REMOVE_RECURSE
  "CMakeFiles/fig14_gpt_dump.dir/fig14_gpt_dump.cc.o"
  "CMakeFiles/fig14_gpt_dump.dir/fig14_gpt_dump.cc.o.d"
  "fig14_gpt_dump"
  "fig14_gpt_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_gpt_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
