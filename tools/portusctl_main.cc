// portusctl: manage and share DNN checkpoints stored on (simulated) PMEM.
//
// The simulated devdax device is persisted as a host-side image file, so
// successive invocations of this tool operate on the same checkpoint store —
// the workflow of SS IV-b:
//
//   portusctl demo   IMAGE               seed the image with checkpointed
//                                        models (in place of a live cluster)
//   portusctl view   IMAGE               list models + slot states
//   portusctl dump   IMAGE MODEL OUT     export the newest valid checkpoint
//                                        as a portable .ptck container file
//   portusctl repack IMAGE               reclaim invalid checkpoint versions
//   portusctl fsck   IMAGE [--verify-only]
//                                        scrub payload CRCs, demote torn or
//                                        corrupt slots, sweep orphans; exit
//                                        0 = clean, 1 = issues found
#include <fstream>
#include <iostream>

#include "common/strformat.h"
#include "core/client.h"
#include "core/cluster/cluster_client.h"
#include "core/cluster/cluster_ctl.h"
#include "core/cluster/migration.h"
#include "core/daemon/daemon.h"
#include "core/fleet/fleet_gen.h"
#include "core/portusctl.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"
#include "sim/fault.h"

using namespace portus;

namespace {

struct World {
  sim::Engine engine;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(engine);
  core::QpRendezvous rendezvous;
  std::unique_ptr<core::PortusDaemon> daemon;

  World() {
    daemon = std::make_unique<core::PortusDaemon>(*cluster, cluster->node("server"),
                                                  rendezvous);
  }
  ~World() { engine.shutdown(); }

  void load(const std::string& image) {
    std::ifstream in{image, std::ios::binary};
    if (!in) {
      std::cerr << "cannot open image: " << image << "\n";
      std::exit(2);
    }
    daemon->device().load_image(in);
    daemon->recover();
  }

  void save(const std::string& image) {
    daemon->device().persist_all();
    std::ofstream out{image, std::ios::binary | std::ios::trunc};
    daemon->device().save_image(out);
  }
};

int cmd_demo(const std::string& image) {
  World w;
  w.daemon->start();
  auto& node = w.cluster->node("client-volta");

  const std::vector<std::pair<std::string, int>> jobs = {
      {"resnet50", 3}, {"alexnet", 2}, {"swin_b", 1}};
  std::vector<dnn::Model> models;
  std::vector<std::unique_ptr<core::PortusClient>> clients;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    dnn::ModelZoo::Options opt;
    opt.scale = 0.05;  // keep the image file small
    models.push_back(dnn::ModelZoo::create(node.gpu(i % node.gpu_count()), jobs[i].first, opt));
    clients.push_back(std::make_unique<core::PortusClient>(
        *w.cluster, node, node.gpu(i % node.gpu_count()), w.rendezvous));
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    w.engine.spawn([](core::PortusClient& c, dnn::Model& m, int ckpts) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      for (int k = 1; k <= ckpts; ++k) {
        m.mutate_weights(static_cast<std::uint64_t>(k));
        co_await c.checkpoint(m, static_cast<std::uint64_t>(k));
      }
      if (ckpts > 1) co_await c.finish(m);  // leave one job "running"
    }(*clients[i], models[i], jobs[i].second));
  }
  w.engine.run();
  w.save(image);
  std::cout << "seeded " << image << " with " << jobs.size() << " checkpointed models\n";
  core::Portusctl ctl{*w.daemon};
  std::cout << ctl.render_view();
  std::cout << "\n" << ctl.render_stats();
  return 0;
}

int cmd_view(const std::string& image) {
  World w;
  w.load(image);
  core::Portusctl ctl{*w.daemon};
  std::cout << ctl.render_view();
  return 0;
}

int cmd_dump(const std::string& image, const std::string& model, const std::string& out_path) {
  World w;
  w.load(image);
  core::Portusctl ctl{*w.daemon};

  storage::CheckpointFile file;
  bool ok = false;
  w.engine.spawn([](core::Portusctl& c, const std::string& name, storage::CheckpointFile& f,
                    bool& done) -> sim::Process {
    f = co_await c.dump(name);
    done = true;
  }(ctl, model, file, ok));
  w.engine.run();
  if (!ok) {
    std::cerr << "dump failed\n";
    return 1;
  }
  const auto container = storage::CheckpointSerializer::serialize(file);
  std::ofstream out{out_path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(container.data()),
            static_cast<std::streamsize>(container.size()));
  if (!out.good()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "dumped " << model << " (" << file.tensors.size() << " tensors, "
            << format_bytes(container.size()) << ") -> " << out_path << "\n";
  return 0;
}

int cmd_repack(const std::string& image) {
  World w;
  w.load(image);
  core::Portusctl ctl{*w.daemon};
  const auto report = ctl.repack();
  std::cout << "freed " << format_bytes(report.freed_outdated) << " outdated + "
            << format_bytes(report.freed_crashed) << " crashed; compacted "
            << format_bytes(report.compacted) << " (" << report.slots_cleared
            << " slots)\n";
  w.save(image);
  return 0;
}

int cmd_fsck(const std::string& image, bool verify_only) {
  World w;
  w.load(image);
  core::Portusctl ctl{*w.daemon};
  const auto report = ctl.fsck(/*repair=*/!verify_only);
  std::cout << ctl.render_fsck(report);
  if (!verify_only) w.save(image);
  return report.clean() ? 0 : 1;
}

// `portusctl tenants`: the per-tenant quota/usage table. Tenancy state is
// daemon DRAM only (quotas re-negotiate on re-registration), so there is no
// image to read it from — this subcommand drives a small mixed-class fleet
// against a tenancy-enabled two-daemon ring and renders what an admin would
// see on a live deployment.
int cmd_tenants() {
  struct TenantWorld {
    sim::Engine engine;
    std::unique_ptr<net::Cluster> cluster;
    core::QpRendezvous rendezvous;
    std::vector<std::unique_ptr<core::PortusDaemon>> daemons;
    std::vector<std::string> endpoints;

    TenantWorld() {
      cluster = net::Cluster::sharded_testbed(engine, 2);
      for (int i = 0; i < 2; ++i) {
        core::PortusDaemon::Config cfg;
        cfg.endpoint = strf("portusd{}", i);
        cfg.tenancy = true;
        cfg.admission_inflight = 1;
        cfg.admission_queue_depth = 4;
        cfg.tenant_defaults.capacity_bytes = 4_GiB;  // policy ceiling
        endpoints.push_back(cfg.endpoint);
        daemons.push_back(std::make_unique<core::PortusDaemon>(
            *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
        daemons.back()->start();
      }
    }
    ~TenantWorld() { engine.shutdown(); }
  };

  TenantWorld w;
  core::fleet::FleetConfig fc;
  fc.tenants = 12;
  fc.checkpoints_per_tenant = 3;
  fc.name_prefix = "demo";
  fc.high_period = Duration{500'000'000};
  fc.normal_period = Duration{200'000'000};
  fc.batch_period = Duration{8'000'000};
  core::fleet::FleetGen gen{*w.cluster, w.cluster->node("client-volta"), w.rendezvous,
                            w.endpoints, fc};
  core::fleet::FleetReport rep;
  w.engine.spawn([](core::fleet::FleetGen& g,
                    core::fleet::FleetReport& out) -> sim::Process {
    out = co_await g.run();
  }(gen, rep));
  w.engine.run();

  std::cout << strf("{} tenants, {} checkpoints, {} backpressure retries absorbed\n\n",
                    fc.tenants, rep.checkpoints, rep.retries);
  for (auto& d : w.daemons) {
    core::Portusctl ctl{*d};
    std::cout << strf("=== {} ===\n", d->config().endpoint) << ctl.render_tenants()
              << "\n";
  }
  return rep.failures == 0 ? 0 : 1;
}

// A Portus-Cluster ring: N storage nodes, one daemon each, endpoints
// "portusd0".."portusdN-1", all killable through the fault injector.
struct ClusterWorld {
  sim::Engine engine;
  std::unique_ptr<net::Cluster> cluster;
  core::QpRendezvous rendezvous;
  sim::FaultInjector faults{engine};
  std::vector<std::unique_ptr<core::PortusDaemon>> daemons;
  std::vector<std::string> endpoints;

  explicit ClusterWorld(int n, bool start) {
    cluster = net::Cluster::sharded_testbed(engine, n);
    for (int i = 0; i < n; ++i) {
      core::PortusDaemon::Config cfg;
      cfg.endpoint = strf("portusd{}", i);
      cfg.faults = &faults;
      endpoints.push_back(cfg.endpoint);
      daemons.push_back(std::make_unique<core::PortusDaemon>(
          *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
      if (start) daemons.back()->start();
    }
  }
  ~ClusterWorld() { engine.shutdown(); }

  std::vector<core::PortusDaemon*> daemon_ptrs() {
    std::vector<core::PortusDaemon*> out;
    for (auto& d : daemons) out.push_back(d.get());
    return out;
  }
};

// Seed a 3-daemon ring with a replicated sharded model, kill one daemon
// mid-run, finish with a degraded restore, and save one image per daemon.
int cmd_cluster_demo(const std::string& image_prefix) {
  using namespace std::chrono_literals;
  ClusterWorld w{3, /*start=*/true};
  auto& volta = w.cluster->node("client-volta");

  dnn::ModelZoo::Options opt;
  opt.scale = 0.05;  // keep the image files small
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  core::cluster::ClusterClient::Config ccfg;
  ccfg.endpoints = w.endpoints;
  ccfg.replicas = 2;
  ccfg.op_timeout = 50ms;
  core::cluster::ClusterClient client{*w.cluster, volta, volta.gpu(0), w.rendezvous, ccfg};

  bool ok = false;
  w.engine.spawn([](ClusterWorld& w, core::cluster::ClusterClient& c, dnn::Model& m,
                    bool& done) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);
    m.mutate_weights(2);
    co_await c.checkpoint(2);
    const auto crc = m.weights_crc();

    w.faults.kill_now("portusd1");  // crash-stop one ring member
    m.mutate_weights(3);
    const auto ck = co_await c.checkpoint(3);
    std::cout << strf("checkpoint 3 committed epoch {}{}\n", ck.epoch,
                      ck.degraded ? " (degraded)" : "");
    const auto crc3 = m.weights_crc();

    m.mutate_weights(99);  // diverge, then pull epoch 3 back
    const auto rr = co_await c.restore();
    std::cout << strf("restore: epoch {}, degraded={}, re-routed {} shards\n", rr.epoch,
                      rr.degraded ? "yes" : "no", rr.rerouted_shards);
    if (m.weights_crc() != crc3 || crc == crc3) throw Error("restore mismatch");
    done = true;
  }(w, client, model, ok));
  w.engine.run();
  if (!ok) {
    std::cerr << "cluster demo failed\n";
    return 1;
  }

  const auto ptrs = w.daemon_ptrs();
  std::cout << "\n" << core::cluster::ClusterCtl::render_status(ptrs, &client);
  for (std::size_t i = 0; i < w.daemons.size(); ++i) {
    const auto path = strf("{}{}.img", image_prefix, i);
    w.daemons[i]->device().persist_all();
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    w.daemons[i]->device().save_image(out);
    std::cout << "saved " << path << "\n";
  }
  return 0;
}

// Elastic-resize walkthrough: a 2-member ring under continuous checkpoints
// grows by one daemon (`join`), optionally streams a member empty (`drain`)
// and retires it (`decommission`) — each step a live migration behind a
// membership-epoch bump, with zero failed client ops and a bit-exact
// restore at the end. `op` selects how far down the lifecycle to run.
int cmd_cluster(const std::string& op) {
  using namespace std::chrono_literals;
  const int depth = op == "join" ? 1 : op == "drain" ? 2 : op == "decommission" ? 3 : 0;
  if (depth == 0) {
    std::cerr << "unknown cluster op: " << op << "\n";
    return 2;
  }

  ClusterWorld w{3, /*start=*/true};
  auto& volta = w.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.05;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  core::cluster::ElasticCluster ec{w.engine};
  ec.add_member("portusd0", *w.daemons[0]);
  ec.add_member("portusd1", *w.daemons[1]);
  ec.seal();

  core::cluster::ClusterClient::Config ccfg;
  ccfg.replicas = 2;
  ccfg.shard_count = 8;  // fixed cut, so shards spread over late joiners
  ccfg.membership = &ec;
  ccfg.op_timeout = 50ms;
  core::cluster::ClusterClient client{*w.cluster, volta, volta.gpu(0), w.rendezvous, ccfg};

  bool ok = false;
  w.engine.spawn([](ClusterWorld& w, core::cluster::ElasticCluster& ec,
                    core::cluster::ClusterClient& c, dnn::Model& m, int depth,
                    bool& done) -> sim::Process {
    co_await c.register_model(m);
    std::uint64_t iter = 0;
    for (int k = 0; k < 2; ++k) {
      m.mutate_weights(++iter);
      co_await c.checkpoint(iter);
    }

    co_await ec.join("portusd2", *w.daemons[2]);
    std::cout << strf("joined portusd2 (epoch {})\n", ec.membership().epoch);
    m.mutate_weights(++iter);
    co_await c.checkpoint(iter);

    if (depth >= 2) {
      co_await ec.drain("portusd0");
      std::cout << strf("drained portusd0 (epoch {})\n", ec.membership().epoch);
      m.mutate_weights(++iter);
      co_await c.checkpoint(iter);
    }
    if (depth >= 3) {
      ec.decommission("portusd0");
      std::cout << strf("decommissioned portusd0 (epoch {})\n", ec.membership().epoch);
      m.mutate_weights(++iter);
      co_await c.checkpoint(iter);
    }

    const auto crc = m.weights_crc();
    m.mutate_weights(9999);  // diverge, then pull the last epoch back
    const auto rr = co_await c.restore();
    std::cout << strf("restore: epoch {}, degraded={}\n", rr.epoch,
                      rr.degraded ? "yes" : "no");
    if (m.weights_crc() != crc) throw Error("restore mismatch after resize");
    done = true;
  }(w, ec, client, model, depth, ok));
  w.engine.run();
  if (!ok) {
    std::cerr << "elastic walkthrough failed\n";
    return 1;
  }

  const auto& ms = ec.stats();
  std::cout << strf("\nmigration: {} copies moved ({}), {} epoch bumps, {} barriers\n",
                    ms.copies_moved, format_bytes(ms.bytes_streamed), ms.epoch_bumps,
                    ms.barriers);
  const auto ptrs = w.daemon_ptrs();
  std::cout << core::cluster::ClusterCtl::render_status(ptrs, &client, &ec.membership());
  return 0;
}

// Aggregate the fleet view from per-daemon images (cluster-demo's output).
int cmd_cluster_status(const std::vector<std::string>& images) {
  ClusterWorld w{static_cast<int>(images.size()), /*start=*/false};
  for (std::size_t i = 0; i < images.size(); ++i) {
    std::ifstream in{images[i], std::ios::binary};
    if (!in) {
      std::cerr << "cannot open image: " << images[i] << "\n";
      return 2;
    }
    w.daemons[i]->device().load_image(in);
    w.daemons[i]->recover();
  }
  std::cout << core::cluster::ClusterCtl::render_status(w.daemon_ptrs());
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  portusctl demo   IMAGE\n"
               "  portusctl view   IMAGE\n"
               "  portusctl dump   IMAGE MODEL OUT.ptck\n"
               "  portusctl repack IMAGE\n"
               "  portusctl fsck   IMAGE [--verify-only]\n"
               "  portusctl tenants\n"
               "  portusctl cluster-demo   IMAGE_PREFIX\n"
               "  portusctl cluster-status IMAGE...\n"
               "  portusctl cluster join|drain|decommission\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "tenants") return cmd_tenants();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (argc < 3) return usage();
  const std::string image = argv[2];
  try {
    if (cmd == "demo") return cmd_demo(image);
    if (cmd == "view") return cmd_view(image);
    if (cmd == "dump" && argc == 5) return cmd_dump(image, argv[3], argv[4]);
    if (cmd == "repack") return cmd_repack(image);
    if (cmd == "fsck") {
      const bool verify_only = argc > 3 && std::string{argv[3]} == "--verify-only";
      return cmd_fsck(image, verify_only);
    }
    if (cmd == "cluster") return cmd_cluster(image);  // argv[2] = join|drain|...
    if (cmd == "cluster-demo") return cmd_cluster_demo(image);
    if (cmd == "cluster-status") {
      return cmd_cluster_status(std::vector<std::string>(argv + 2, argv + argc));
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
