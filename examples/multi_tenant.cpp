// Multi-tenant checkpointing: four training jobs on four GPUs of one
// compute node, all checkpointing to the same Portus daemon concurrently
// (SS III-D: "rapid checkpointing makes finer-grained multi-tenant model
// training foreseeable"). Shows per-tenant checkpoint latency under
// contention and the daemon-side view through portusctl.
//
// Build & run:  ./build/examples/multi_tenant
#include <iomanip>
#include <iostream>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/portusctl.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

using namespace portus;

namespace {

sim::Process tenant(sim::Engine& eng, core::PortusClient& client, dnn::Model& model,
                    int iterations, Duration& total_ckpt_time) {
  co_await client.connect();
  co_await client.register_model(model);
  for (int i = 1; i <= iterations; ++i) {
    model.mutate_weights(static_cast<std::uint64_t>(i));
    const Time t0 = eng.now();
    co_await client.checkpoint(model, static_cast<std::uint64_t>(i));
    total_ckpt_time += eng.now() - t0;
  }
  co_await client.finish(model);
}

}  // namespace

int main() {
  sim::Engine engine;
  auto cluster = net::Cluster::paper_testbed(engine);
  auto& node = cluster->node("client-volta");

  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*cluster, cluster->node("server"), rendezvous};
  daemon.start();

  const std::vector<std::string> tenants = {"resnet50", "vgg19_bn", "swin_b", "convnext_base"};
  constexpr int kIterations = 3;

  std::vector<dnn::Model> models;
  std::vector<std::unique_ptr<core::PortusClient>> clients;
  std::vector<Duration> ckpt_time(tenants.size(), Duration{0});

  for (std::size_t i = 0; i < tenants.size(); ++i) {
    models.push_back(dnn::ModelZoo::create(node.gpu(i), tenants[i]));
    clients.push_back(
        std::make_unique<core::PortusClient>(*cluster, node, node.gpu(i), rendezvous));
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    engine.spawn(tenant(engine, *clients[i], models[i], kIterations, ckpt_time[i]));
  }
  engine.run();

  std::cout << "four tenants, " << kIterations << " checkpoints each, all concurrent:\n\n";
  std::cout << std::left << std::setw(16) << "tenant" << std::setw(12) << "size"
            << std::setw(16) << "avg ckpt" << "effective bw\n";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const auto avg = ckpt_time[i] / kIterations;
    const double bw = static_cast<double>(models[i].total_bytes()) / to_seconds(avg);
    std::cout << std::left << std::setw(16) << tenants[i] << std::setw(12)
              << format_bytes(models[i].total_bytes()) << std::setw(16)
              << format_duration(avg) << format_bandwidth(Bandwidth::bytes_per_sec(bw))
              << "\n";
  }

  std::cout << "\ndaemon view (portusctl view):\n";
  core::Portusctl ctl{daemon};
  std::cout << ctl.render_view();

  std::cout << "\nrepacking (all jobs finished -> outdated versions reclaimed):\n";
  const auto report = ctl.repack();
  std::cout << "  freed " << format_bytes(report.freed_outdated) << " outdated, compacted "
            << format_bytes(report.compacted) << ", slots cleared " << report.slots_cleared
            << "\n";

  engine.shutdown();
  return 0;
}
