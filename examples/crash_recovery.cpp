// Crash consistency walkthrough (SS III-D2, Fig. 6):
//
//   1. Train with asynchronous Portus checkpoints every iteration.
//   2. Power-fail the storage server *while a checkpoint pull is mid-air*.
//   3. Restart the daemon; recovery rebuilds ModelMap + AllocTable from
//      PMEM and finds the torn ACTIVE slot.
//   4. The previous DONE version restores bit-exactly; the repacker then
//      reclaims the crashed slot's space.
//
// Build & run:  ./build/examples/crash_recovery
#include <iostream>

#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/repacker.h"
#include "core/portusctl.h"
#include "dnn/model_zoo.h"
#include "dnn/training.h"
#include "net/cluster.h"

using namespace portus;
using namespace std::chrono_literals;

int main() {
  sim::Engine engine;
  auto cluster = net::Cluster::paper_testbed(engine);
  auto& node = cluster->node("client-volta");

  core::QpRendezvous rendezvous;
  auto daemon = std::make_unique<core::PortusDaemon>(*cluster, cluster->node("server"),
                                                     rendezvous);
  daemon->start();

  auto model = dnn::ModelZoo::create(node.gpu(0), "vgg19_bn");
  core::PortusClient client{*cluster, node, node.gpu(0), rendezvous};

  // Phase 1: train with async checkpoints each iteration.
  dnn::TrainingStats stats;
  std::uint32_t crc_before_crash = 0;
  core::PortusHook hook{client, model, /*interval=*/1, core::PortusHook::Mode::kAsync};
  engine.spawn([](sim::Engine& eng, net::Node& n, core::PortusClient& c, dnn::Model& m,
                  core::PortusHook& h, dnn::TrainingStats& st) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    const dnn::TrainingConfig cfg{.iteration_time = 180ms, .update_fraction = 0.08,
                                  .busy_fraction = 0.85};
    co_await eng.spawn(dnn::train(eng, n.gpu(0), &m, cfg, 400, h, st)).join();
  }(engine, node, client, model, hook, stats));

  // Let a few checkpoints land, then yank the power mid-pull: advance in
  // 5 ms steps until a slot is ACTIVE (a pull in flight) with a committed
  // DONE version next to it.
  for (int step = 0; step < 10'000; ++step) {
    engine.run_for(5ms);
    auto* live = daemon->find_live_index("vgg19_bn");
    if (live == nullptr) continue;
    const bool active = live->slot(0).state == core::SlotState::kActive ||
                        live->slot(1).state == core::SlotState::kActive;
    const bool done = live->slot(0).state == core::SlotState::kDone ||
                      live->slot(1).state == core::SlotState::kDone;
    if (active && done) break;
  }
  {
    auto* live = daemon->find_live_index("vgg19_bn");
    std::cout << "t=" << format_duration(engine.now() - Time{0}) << "  slots: ["
              << to_string(live->slot(0).state) << "@" << live->slot(0).epoch << ", "
              << to_string(live->slot(1).state) << "@" << live->slot(1).epoch
              << "]  (one version DONE, next one in flight)\n";
  }
  const auto committed = daemon->load_index("vgg19_bn");
  const auto committed_slot = committed.latest_done_slot();
  if (!committed_slot.has_value()) {
    std::cerr << "no committed version yet; crash window too early\n";
    return 1;
  }
  const auto epoch_before = committed.slot(*committed_slot).epoch;
  crc_before_crash = daemon->device().crc(committed.slot(*committed_slot).data_offset,
                                          committed.slot_size());

  std::cout << "\n*** power failure on the storage server (epoch " << epoch_before
            << " committed, epoch " << epoch_before + 1 << " mid-pull) ***\n\n";
  engine.shutdown();  // every in-flight process dies with the machines
  daemon->device().simulate_crash();

  // Phase 2: daemon restart + recovery.
  core::PortusDaemon recovered{*cluster, cluster->node("server"), rendezvous,
                               core::PortusDaemon::Config{.endpoint = "portusd-2"}};
  recovered.recover();
  recovered.start();

  auto index = recovered.load_index("vgg19_bn");
  std::cout << "after recovery: slots: [" << to_string(index.slot(0).state) << "@"
            << index.slot(0).epoch << ", " << to_string(index.slot(1).state) << "@"
            << index.slot(1).epoch << "]\n";
  const auto valid = index.latest_done_slot();
  if (!valid.has_value() || index.slot(*valid).epoch != epoch_before) {
    std::cerr << "FAILED: expected epoch " << epoch_before << " to survive\n";
    return 1;
  }
  const auto crc_after = recovered.device().crc(index.slot(*valid).data_offset,
                                                index.slot_size());
  std::cout << "surviving version: epoch " << index.slot(*valid).epoch << ", data "
            << (crc_after == crc_before_crash ? "INTACT (crc match)" : "CORRUPT") << "\n";

  // Phase 3: repack reclaims the crashed ACTIVE slot before the job resumes.
  core::Portusctl ctl{recovered};
  const auto report = ctl.repack();
  std::cout << "repack: freed " << format_bytes(report.freed_crashed)
            << " from the crashed checkpoint, compacted " << format_bytes(report.compacted)
            << "\n";
  std::cout << ctl.render_view();

  // Phase 4: the restarted training job re-registers and restores.
  core::PortusClient client2{*cluster, node, node.gpu(0), rendezvous, "portusd-2"};
  model.mutate_weights(0xBAD);  // fresh process, uninitialized weights
  bool restored = false;
  engine.spawn([](core::PortusClient& c, dnn::Model& m, bool& ok) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    const auto epoch = co_await c.restore(m);
    std::cout << "restored epoch " << epoch << " into the new training process\n";
    ok = true;
  }(client2, model, restored));
  engine.run();
  if (!restored) return 1;

  engine.shutdown();
  std::cout << "OK\n";
  return crc_after == crc_before_crash ? 0 : 1;
}
