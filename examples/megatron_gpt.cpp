// Distributed large-model checkpointing (SS V-E): GPT-22.4B partitioned
// Megatron-style (TP=8 within each node, PP=2 across the two client nodes)
// over 16 GPUs, every rank checkpointing its shard concurrently to one
// Portus daemon. The 89.6 GB of checkpoint state moves as phantom payloads
// (timing without bytes) — exactly how the Fig. 14 benchmark runs.
//
// Build & run:  ./build/examples/megatron_gpt
#include <iostream>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "dnn/parallel.h"
#include "net/cluster.h"

using namespace portus;

namespace {

struct Rank {
  dnn::ShardSpec shard;
  std::unique_ptr<dnn::Model> model;
  std::unique_ptr<core::PortusClient> client;
};

sim::Process run_rank(sim::Engine& eng, Rank& rank, Duration& ckpt, Duration& restore) {
  co_await rank.client->connect();
  co_await rank.client->register_model(*rank.model);

  Time t0 = eng.now();
  co_await rank.client->checkpoint(*rank.model, 1);
  ckpt = eng.now() - t0;

  t0 = eng.now();
  co_await rank.client->restore(*rank.model);
  restore = eng.now() - t0;
}

}  // namespace

int main() {
  sim::Engine engine;
  auto cluster = net::Cluster::paper_testbed(engine);

  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*cluster, cluster->node("server"), rendezvous,
                            core::PortusDaemon::Config{.workers = 16}};
  daemon.start();

  const auto& full = dnn::ModelZoo::spec("gpt-22.4b");
  dnn::MegatronPartitioner partitioner{/*tensor_parallel=*/8, /*pipeline_parallel=*/2};
  const auto shards = partitioner.partition(full);

  std::cout << "GPT-22.4B: " << format_bytes(full.checkpoint_bytes) << " across "
            << shards.size() << " GPUs (TP=8 x PP=2, two client nodes)\n";

  // PP stage 0 lives on client-volta... the paper uses two Ampere nodes; we
  // only have one in the reference testbed, so stage 1 shares client-ampere
  // GPUs with stage 0 mapped to client-volta's 4 GPUs doubled up. To stay
  // faithful to "8 GPUs per node", put all TP ranks of stage p on node p.
  std::vector<Rank> ranks;
  std::vector<Duration> ckpt(shards.size()), restore(shards.size());
  for (const auto& shard : shards) {
    auto& node = cluster->node(shard.pp_rank == 0 ? "client-ampere" : "client-volta");
    auto& gpu = node.gpu(static_cast<std::size_t>(shard.tp_rank) % node.gpu_count());
    Rank rank;
    rank.shard = shard;
    dnn::ModelZoo::Options opt;
    opt.force_phantom = true;  // timing-scale payloads
    rank.model = std::make_unique<dnn::Model>(
        dnn::ModelZoo::create_from_spec(gpu, shard.spec, opt));
    rank.client = std::make_unique<core::PortusClient>(*cluster, node, gpu, rendezvous);
    ranks.push_back(std::move(rank));
  }
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    engine.spawn(run_rank(engine, ranks[i], ckpt[i], restore[i]));
  }
  const Time end = engine.run();

  Duration max_ckpt{0}, max_restore{0};
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    max_ckpt = std::max(max_ckpt, ckpt[i]);
    max_restore = std::max(max_restore, restore[i]);
  }
  const double agg_ckpt_bw = static_cast<double>(full.checkpoint_bytes) / to_seconds(max_ckpt);

  std::cout << "\nper-rank shard: ~" << format_bytes(shards[0].spec.checkpoint_bytes)
            << ", " << shards[0].spec.layers << " layers\n";
  std::cout << "checkpoint (all 16 shards, concurrent): " << format_duration(max_ckpt)
            << "  aggregate " << format_bandwidth(Bandwidth::bytes_per_sec(agg_ckpt_bw))
            << "\n";
  std::cout << "restore    (all 16 shards, concurrent): " << format_duration(max_restore)
            << "\n";
  std::cout << "paper reference (Fig. 14): ~15 s for the same dump via Portus vs >120 s "
               "via torch.save to BeeGFS\n";
  std::cout << "daemon pulled " << format_bytes(daemon.stats().bytes_pulled) << " across "
            << daemon.stats().checkpoints << " shard checkpoints; sim ended at t="
            << format_duration(end - Time{0}) << "\n";

  engine.shutdown();
  return 0;
}
