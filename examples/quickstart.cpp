// Quickstart: the smallest end-to-end Portus session.
//
//   1. Build the simulated testbed (compute node with V100s, storage node
//      with Optane PMEM, 100 Gbps InfiniBand).
//   2. Start the Portus daemon on the storage node.
//   3. Create a ResNet-50, register it (PeerMem pinning + metadata packet).
//   4. Checkpoint: the *server* pulls every tensor GPU -> PMEM, zero-copy.
//   5. Corrupt the weights (simulating a crashed run), restore, verify that
//      every byte came back.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

using namespace portus;

int main() {
  sim::Engine engine;
  auto cluster = net::Cluster::paper_testbed(engine);
  auto& client_node = cluster->node("client-volta");
  auto& server_node = cluster->node("server");

  // Storage-side daemon: three-level index on the devdax PMEM namespace.
  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*cluster, server_node, rendezvous};
  daemon.start();

  // Compute-side: a ResNet-50 resident on GPU 0 (full size, real bytes).
  auto model = dnn::ModelZoo::create(client_node.gpu(0), "resnet50");
  const auto original_crc = model.weights_crc();
  std::cout << "model: " << model.name() << ", " << model.layer_count() << " tensors, "
            << format_bytes(model.total_bytes()) << " on " << client_node.gpu(0).name()
            << "\n";

  core::PortusClient client{*cluster, client_node, client_node.gpu(0), rendezvous};

  bool verified = false;
  engine.spawn([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
                  std::uint32_t crc0, bool& ok) -> sim::Process {
    co_await c.connect();

    Time t0 = eng.now();
    co_await c.register_model(m);
    std::cout << "registered in " << format_duration(eng.now() - t0)
              << " (PeerMem pinning + MR registration + metadata packet)\n";

    t0 = eng.now();
    const auto epoch = co_await c.checkpoint(m, /*iteration=*/1);
    const auto ckpt_time = eng.now() - t0;
    std::cout << "checkpoint epoch " << epoch << " in " << format_duration(ckpt_time)
              << "  (" << format_bandwidth(Bandwidth::bytes_per_sec(
                             static_cast<double>(m.total_bytes()) / to_seconds(ckpt_time)))
              << " effective, one-sided RDMA READ GPU->PMEM)\n";

    // Disaster strikes: the training job dies and the weights are garbage.
    m.mutate_weights(0xDEAD);
    std::cout << "weights corrupted (crc " << (m.weights_crc() == crc0 ? "same" : "differs")
              << ")\n";

    t0 = eng.now();
    co_await c.restore(m);
    std::cout << "restored in " << format_duration(eng.now() - t0)
              << " (one-sided RDMA WRITE PMEM->GPU)\n";

    ok = m.weights_crc() == crc0;
    co_return;
  }(engine, client, model, original_crc, verified));

  engine.run();
  engine.shutdown();

  std::cout << (verified ? "OK: restored weights are bit-exact\n"
                         : "FAILED: weight mismatch after restore\n");
  return verified ? 0 : 1;
}
