// Timeline tracing (Fig. 9, interactive edition): run the four checkpoint
// policies back-to-back on one virtual timeline and export a Chrome
// trace-event file. Open the output in https://ui.perfetto.dev (or
// chrome://tracing) to see exactly where each policy stalls:
//
//   (a) pytorch      : every boundary blocks for copy+serialize+write
//   (b) checkfreq    : snapshot overlaps, persist throttles the next trigger
//   (c) portus-sync  : short blocking pulls
//   (d) portus-async : stalls vanish
//
// Build & run:  ./build/examples/timeline_trace [out.json]
#include <fstream>
#include <iostream>

#include "baselines/checkfreq.h"

#include "common/strformat.h"
#include "baselines/torch_save.h"
#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "dnn/training.h"
#include "net/cluster.h"
#include "storage/beegfs.h"

using namespace portus;
using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kIterations = 6;

class TorchSaveHook final : public dnn::CheckpointHook {
 public:
  TorchSaveHook(net::Node& node, gpu::GpuDevice& gpu, dnn::Model& model,
                storage::CheckpointStorage& fs, sim::Tracer& tracer)
      : ckpt_{node, gpu, fs}, model_{model}, tracer_{tracer} {}
  sim::SubTask<> on_iteration_end(std::uint64_t iter) override {
    auto span = tracer_.span("torch.save", "pytorch");
    co_await ckpt_.checkpoint(model_, strf("/pt/ckpt.iter{}", iter));
  }
  sim::SubTask<> before_update(std::uint64_t) override { co_return; }

 private:
  baselines::TorchSaveCheckpointer ckpt_;
  dnn::Model& model_;
  sim::Tracer& tracer_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "fig9_timeline.json";

  sim::Engine engine;
  sim::Tracer tracer{engine};
  auto cluster = net::Cluster::paper_testbed(engine);
  auto& node = cluster->node("client-volta");

  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*cluster, cluster->node("server"), rendezvous,
                            core::PortusDaemon::Config{.tracer = &tracer}};
  daemon.start();
  storage::BeeGfsServer beegfs{cluster->node("server")};

  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  dnn::TrainingConfig cfg{.iteration_time = 180ms, .update_fraction = 0.08,
                          .busy_fraction = 1.0, .mutate_weights = false,
                          .tracer = &tracer};

  // The four policies run sequentially on one timeline, one trace row each.
  engine.spawn([](sim::Engine& eng, sim::Tracer& tr, net::Cluster& cl, net::Node& n,
                  core::QpRendezvous& rv, storage::BeeGfsServer& bg,
                  dnn::TrainingConfig base_cfg, dnn::ModelZoo::Options mopt)
                   -> sim::Process {
    dnn::TrainingStats stats;

    {  // (a) PyTorch built-in
      auto model = dnn::ModelZoo::create(n.gpu(0), "vgg19_bn", mopt);
      storage::BeeGfsMount mount{cl, n, bg, "mnt-pt"};
      TorchSaveHook hook{n, n.gpu(0), model, mount, tr};
      auto cfg = base_cfg;
      cfg.trace_track = "pytorch";
      co_await eng.spawn(dnn::train(eng, n.gpu(0), &model, cfg, kIterations, hook, stats))
          .join();
    }
    {  // (b) CheckFreq
      auto model = dnn::ModelZoo::create(n.gpu(1), "vgg19_bn", mopt);
      storage::BeeGfsMount mount{cl, n, bg, "mnt-cf"};
      baselines::CheckFreqHook hook{n, n.gpu(1), model, mount, 1, "/cf/ckpt"};
      hook.set_tracer(&tr, "checkfreq");
      auto cfg = base_cfg;
      cfg.trace_track = "checkfreq";
      co_await eng.spawn(dnn::train(eng, n.gpu(1), &model, cfg, kIterations, hook, stats))
          .join();
      co_await hook.drain();
    }
    {  // (c) Portus sync
      auto model = dnn::ModelZoo::create(n.gpu(2), "vgg19_bn", mopt);
      core::PortusClient client{cl, n, n.gpu(2), rv};
      co_await client.connect();
      co_await client.register_model(model);
      core::PortusHook hook{client, model, 1, core::PortusHook::Mode::kSync};
      auto cfg = base_cfg;
      cfg.trace_track = "portus-sync";
      co_await eng.spawn(dnn::train(eng, n.gpu(2), &model, cfg, kIterations, hook, stats))
          .join();
    }
    {  // (d) Portus async
      auto model = dnn::ModelZoo::create(n.gpu(3), "vgg19_bn", mopt);
      core::PortusClient client{cl, n, n.gpu(3), rv};
      co_await client.connect();
      co_await client.register_model(model);
      core::PortusHook hook{client, model, 1, core::PortusHook::Mode::kAsync};
      auto cfg = base_cfg;
      cfg.trace_track = "portus-async";
      co_await eng.spawn(dnn::train(eng, n.gpu(3), &model, cfg, kIterations, hook, stats))
          .join();
      co_await hook.drain();
    }
  }(engine, tracer, *cluster, node, rendezvous, beegfs, cfg, opt));

  engine.run();

  std::ofstream out{out_path, std::ios::trunc};
  tracer.write_chrome_json(out);
  std::cout << "wrote " << tracer.event_count() << " trace events to " << out_path
            << "\nopen it in https://ui.perfetto.dev — one row per policy, plus the "
               "portusd row showing the daemon-side pulls\n";

  engine.shutdown();
  return 0;
}
